//! H-tree floorplanning: placing the tree on a die and deriving per-link
//! wire lengths.
//!
//! The clock and the data share every branch of the tree, so the physical
//! length of each branch is what feeds the link-timing model. We place
//! routers recursively at the centre of their die region (the classic
//! H-tree used for clock distribution), leaves at the centre of their tile
//! cell, and measure links with the Manhattan metric of routed wires.

use crate::{LinkId, NodeId, TreeTopology};
use icnoc_units::Millimeters;
use serde::{Deserialize, Serialize};

/// A placed node: its centre coordinates on the die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Horizontal position of the node centre.
    pub x: Millimeters,
    /// Vertical position of the node centre.
    pub y: Millimeters,
}

impl Placement {
    /// Manhattan wire length to another placement.
    #[must_use]
    pub fn wire_length_to(self, other: Placement) -> Millimeters {
        Millimeters::manhattan((self.x, self.y), (other.x, other.y))
    }
}

/// Physical geometry of one link: its routed length and its division into
/// pipeline segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkGeometry {
    /// The link this geometry describes.
    pub link: LinkId,
    /// Total routed (Manhattan) length.
    pub length: Millimeters,
    /// Number of equal segments the link is split into (≥ 1).
    pub segment_count: usize,
}

impl LinkGeometry {
    /// Length of each equal segment.
    #[must_use]
    pub fn segment_length(&self) -> Millimeters {
        self.length / self.segment_count as f64
    }

    /// Intermediate pipeline stages inserted on the link
    /// (`segment_count − 1`; the endpoints' registers belong to the
    /// routers).
    #[must_use]
    pub fn pipeline_stage_count(&self) -> usize {
        self.segment_count - 1
    }
}

/// An H-tree placement of a [`TreeTopology`] on a rectangular die.
///
/// ```
/// use icnoc_topology::{Floorplan, TreeTopology};
/// use icnoc_units::Millimeters;
///
/// // The paper's demonstrator: 64 ports on a 10 mm × 10 mm chip.
/// let tree = TreeTopology::binary(64)?;
/// let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
/// // Root links span half a die quadrant: 2.5 mm, pipelined at ≤1.25 mm
/// // into the paper's "link segments of 1.25 mm near the root".
/// let longest = plan.longest_link_length();
/// assert_eq!(longest, Millimeters::new(2.5));
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    die_width: Millimeters,
    die_height: Millimeters,
    positions: Vec<Placement>,
    link_lengths: Vec<Millimeters>,
}

impl Floorplan {
    /// Places `tree` on a `die_width × die_height` die with the recursive
    /// H-tree scheme: each router sits at the centre of its region; a binary
    /// tree splits the region in two along its longer axis, a quad tree
    /// into quadrants.
    ///
    /// # Panics
    ///
    /// Panics if either die dimension is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn h_tree(tree: &TreeTopology, die_width: Millimeters, die_height: Millimeters) -> Self {
        assert!(die_width.value() > 0.0, "die width must be positive");
        assert!(die_height.value() > 0.0, "die height must be positive");

        let mut positions = vec![
            Placement {
                x: Millimeters::ZERO,
                y: Millimeters::ZERO
            };
            tree.node_count()
        ];
        // Region per node: (x0, y0, w, h).
        let mut region = vec![(0.0f64, 0.0f64, die_width.value(), die_height.value())];
        region.resize(tree.node_count(), (0.0, 0.0, 0.0, 0.0));
        region[tree.root().index()] = (0.0, 0.0, die_width.value(), die_height.value());

        // BFS order guarantees parents are processed before children.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.root());
        while let Some(node) = queue.pop_front() {
            let (x0, y0, w, h) = region[node.index()];
            positions[node.index()] = Placement {
                x: Millimeters::new(x0 + w / 2.0),
                y: Millimeters::new(y0 + h / 2.0),
            };
            let children = tree.children(node);
            match children.len() {
                0 => {}
                2 => {
                    // Split along the longer axis so cells stay square-ish.
                    let halves = if w >= h {
                        [(x0, y0, w / 2.0, h), (x0 + w / 2.0, y0, w / 2.0, h)]
                    } else {
                        [(x0, y0, w, h / 2.0), (x0, y0 + h / 2.0, w, h / 2.0)]
                    };
                    for (c, r) in children.iter().zip(halves) {
                        region[c.index()] = r;
                        queue.push_back(*c);
                    }
                }
                4 => {
                    let (hw, hh) = (w / 2.0, h / 2.0);
                    let quads = [
                        (x0, y0, hw, hh),
                        (x0 + hw, y0, hw, hh),
                        (x0, y0 + hh, hw, hh),
                        (x0 + hw, y0 + hh, hw, hh),
                    ];
                    for (c, r) in children.iter().zip(quads) {
                        region[c.index()] = r;
                        queue.push_back(*c);
                    }
                }
                n => unreachable!("tree arity {n} is not supported by the H-tree floorplanner"),
            }
        }

        let mut link_lengths = vec![Millimeters::ZERO; tree.node_count()];
        for link in tree.links() {
            let (child, parent) = tree.link_endpoints(link);
            link_lengths[link.index()] =
                positions[child.index()].wire_length_to(positions[parent.index()]);
        }

        Self {
            die_width,
            die_height,
            positions,
            link_lengths,
        }
    }

    /// Die width.
    #[must_use]
    pub fn die_width(&self) -> Millimeters {
        self.die_width
    }

    /// Die height.
    #[must_use]
    pub fn die_height(&self) -> Millimeters {
        self.die_height
    }

    /// Placement of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Placement {
        self.positions[node.index()]
    }

    /// Routed length of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link_length(&self, link: LinkId) -> Millimeters {
        self.link_lengths[link.index()]
    }

    /// The longest link in the plan (near the root in an H-tree).
    #[must_use]
    pub fn longest_link_length(&self) -> Millimeters {
        self.link_lengths
            .iter()
            .copied()
            .fold(Millimeters::ZERO, Millimeters::max)
    }

    /// Sum of all link lengths.
    #[must_use]
    pub fn total_wire_length(&self) -> Millimeters {
        self.link_lengths.iter().copied().sum()
    }

    /// Splits a link into the fewest equal segments not exceeding
    /// `max_segment`, yielding its pipeline geometry.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment` is not strictly positive or `link` is out of
    /// range.
    #[must_use]
    #[track_caller]
    pub fn pipelined_link(&self, link: LinkId, max_segment: Millimeters) -> LinkGeometry {
        assert!(
            max_segment.value() > 0.0,
            "maximum segment length must be positive"
        );
        let length = self.link_length(link);
        // A hair of tolerance so a link measuring exactly N segments is not
        // split into N+1 by floating-point noise in the cap.
        let ratio = length.value() / max_segment.value();
        let segment_count = (ratio - 1e-9).ceil().max(1.0) as usize;
        LinkGeometry {
            link,
            length,
            segment_count,
        }
    }

    /// Pipeline geometry for every link of `tree` at the given segment cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment` is not strictly positive.
    #[must_use]
    pub fn pipelined_links(
        &self,
        tree: &TreeTopology,
        max_segment: Millimeters,
    ) -> Vec<LinkGeometry> {
        tree.links()
            .map(|l| self.pipelined_link(l, max_segment))
            .collect()
    }

    /// Total number of intermediate pipeline stages across all links at the
    /// given segment cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment` is not strictly positive.
    #[must_use]
    pub fn total_pipeline_stages(&self, tree: &TreeTopology, max_segment: Millimeters) -> usize {
        self.pipelined_links(tree, max_segment)
            .iter()
            .map(LinkGeometry::pipeline_stage_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PortId, TreeTopology};
    use proptest::prelude::*;

    fn demonstrator() -> (TreeTopology, Floorplan) {
        let tree = TreeTopology::binary(64).expect("power of 2");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        (tree, plan)
    }

    #[test]
    fn root_sits_at_die_centre() {
        let (tree, plan) = demonstrator();
        let p = plan.position(tree.root());
        assert_eq!(p.x, Millimeters::new(5.0));
        assert_eq!(p.y, Millimeters::new(5.0));
    }

    #[test]
    fn root_links_are_2_5mm_and_pipeline_at_1_25() {
        let (tree, plan) = demonstrator();
        let root_child = tree.children(tree.root())[0];
        let link = tree.uplink(root_child).expect("non-root");
        assert_eq!(plan.link_length(link), Millimeters::new(2.5));
        let geo = plan.pipelined_link(link, Millimeters::new(1.25));
        assert_eq!(geo.segment_count, 2);
        assert_eq!(geo.segment_length(), Millimeters::new(1.25));
        assert_eq!(geo.pipeline_stage_count(), 1);
    }

    #[test]
    fn all_nodes_are_on_die() {
        let (tree, plan) = demonstrator();
        for i in 0..tree.node_count() {
            let p = plan.position(crate::NodeId(i as u32));
            assert!(p.x.value() >= 0.0 && p.x.value() <= 10.0);
            assert!(p.y.value() >= 0.0 && p.y.value() <= 10.0);
        }
    }

    #[test]
    fn leaf_cells_tile_the_die_distinctly() {
        let (tree, plan) = demonstrator();
        // All 64 leaves have distinct positions.
        let mut seen = std::collections::HashSet::new();
        for leaf in tree.leaves() {
            let p = plan.position(leaf);
            let key = (
                (p.x.value() * 1e6).round() as i64,
                (p.y.value() * 1e6).round() as i64,
            );
            assert!(seen.insert(key), "leaf {leaf} overlaps another leaf");
        }
    }

    #[test]
    fn link_lengths_shrink_towards_the_leaves() {
        let (tree, plan) = demonstrator();
        // Paper: "the routers are more evenly spread out in a binary tree,
        // so that links near the root are shorter" — in the H-tree, deeper
        // links are never longer than shallower ones.
        let mut by_depth = std::collections::BTreeMap::<u32, Millimeters>::new();
        for link in tree.links() {
            let (child, _) = tree.link_endpoints(link);
            let d = tree.node_depth(child);
            let e = by_depth.entry(d).or_insert(Millimeters::ZERO);
            *e = e.max(plan.link_length(link));
        }
        let lengths: Vec<Millimeters> = by_depth.values().copied().collect();
        for w in lengths.windows(2) {
            assert!(w[1] <= w[0], "deeper link {} > shallower {}", w[1], w[0]);
        }
    }

    #[test]
    fn quad_tree_floorplan_also_works() {
        let tree = TreeTopology::quad(64).expect("power of 4");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        // Root at centre; root links are quadrant-centre distances:
        // manhattan((5,5),(2.5,2.5)) = 5 mm.
        assert_eq!(plan.longest_link_length(), Millimeters::new(5.0));
        assert!(plan.total_wire_length().value() > 0.0);
    }

    #[test]
    fn short_links_need_no_pipeline_stages() {
        let (tree, plan) = demonstrator();
        let leaf = tree.leaf(PortId(0)).expect("in range");
        let link = tree.uplink(leaf).expect("non-root");
        let geo = plan.pipelined_link(link, Millimeters::new(1.25));
        assert_eq!(geo.pipeline_stage_count(), 0);
        assert_eq!(geo.segment_length(), geo.length);
    }

    #[test]
    fn demonstrator_stage_count_is_small() {
        // Only the six links at the two top levels exceed 1.25 mm.
        let (tree, plan) = demonstrator();
        assert_eq!(plan.total_pipeline_stages(&tree, Millimeters::new(1.25)), 6);
    }

    proptest! {
        #[test]
        fn every_link_positive_and_on_die(depth in 1u32..7) {
            let tree = TreeTopology::binary(1 << depth).expect("power of 2");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            for link in tree.links() {
                let len = plan.link_length(link);
                prop_assert!(len.value() > 0.0, "{link} has zero length");
                prop_assert!(len.value() <= 10.0);
            }
        }

        #[test]
        fn segmentation_respects_cap(depth in 1u32..7, cap in 0.3f64..3.0) {
            let tree = TreeTopology::binary(1 << depth).expect("power of 2");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            for geo in plan.pipelined_links(&tree, Millimeters::new(cap)) {
                prop_assert!(geo.segment_length().value() <= cap + 1e-12);
                prop_assert_eq!(geo.pipeline_stage_count(), geo.segment_count - 1);
            }
        }
    }
}
