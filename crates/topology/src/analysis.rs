//! Tree-vs-mesh comparison analytics (Section 3 of the paper).
//!
//! The paper argues the tree wins on worst-case hops (`2·log₂N − 1` vs
//! `2·√N`), router count/area, locality (neighbours cross a single 3×3
//! router) and — citing Lee's SoC keynote — on power even without link
//! power-reduction tricks. This module computes those metrics exactly over
//! a given port count.

use crate::{AreaModel, Floorplan, MeshTopology, PortId, RouterClass, TopologyError, TreeTopology};
use icnoc_units::{Millimeters, Picojoules, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Per-flit energy cost of crossing one router, per mm² of router area.
///
/// Routers dominate NoC energy (buffering, arbitration, crossbar and the
/// clocked registers), which is the basis of the paper's tree-vs-mesh power
/// claim via \[12\]. 200 pJ/mm² puts a 32-bit 3×3 crossing at 2 pJ and a
/// 5×5 at 4.4 pJ — mid-range for published 0.13–0.18 µm routers.
pub const ROUTER_ENERGY_PER_MM2: f64 = 200.0;

/// Per-flit, per-mm wire energy: 32 signal wires × ½·C·V² × 0.25 switching
/// activity at the paper's 0.2 pF/mm and 1 V = 0.8 pJ/(flit·mm).
pub const WIRE_ENERGY_PER_MM: f64 = 0.8;

/// Average hops over all ordered distinct port pairs (uniform random
/// traffic) in a tree.
#[must_use]
pub fn tree_average_hops(tree: &TreeTopology) -> f64 {
    let n = tree.num_ports();
    let mut total = 0usize;
    for a in tree.ports() {
        for b in tree.ports() {
            if a != b {
                total += tree.hops(a, b).expect("ports are in range");
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

/// Average hops over all ordered distinct port pairs in a mesh.
#[must_use]
pub fn mesh_average_hops(mesh: &MeshTopology) -> f64 {
    let n = mesh.num_ports();
    let mut total = 0usize;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                total += mesh
                    .hops(PortId(a as u32), PortId(b as u32))
                    .expect("ports are in range");
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

/// Average hops between tile-local port pairs `(2i, 2i+1)` — the paper's
/// processor↔local-memory traffic. 1 for any binary tree.
#[must_use]
pub fn tree_neighbor_hops(tree: &TreeTopology) -> f64 {
    let pairs = tree.num_ports() / 2;
    let total: usize = (0..pairs)
        .map(|i| {
            tree.hops(PortId(2 * i as u32), PortId(2 * i as u32 + 1))
                .expect("ports are in range")
        })
        .sum();
    total as f64 / pairs as f64
}

/// Average wire length traversed per flit under uniform traffic, using the
/// floorplan's link lengths.
#[must_use]
pub fn tree_average_wire_length(tree: &TreeTopology, plan: &Floorplan) -> Millimeters {
    let n = tree.num_ports();
    let mut total = Millimeters::ZERO;
    for a in tree.ports() {
        for b in tree.ports() {
            if a != b {
                let path = tree.route(a, b).expect("ports are in range");
                for link in path.links(tree) {
                    total += plan.link_length(link);
                }
            }
        }
    }
    total / (n * (n - 1)) as f64
}

/// Average wire length per flit in a mesh on a square die: Manhattan hops ×
/// router pitch.
#[must_use]
pub fn mesh_average_wire_length(mesh: &MeshTopology, die_edge: Millimeters) -> Millimeters {
    let pitch = die_edge / mesh.side() as f64;
    // links traversed = hops − 1 (hops counts routers).
    let avg_links = mesh_average_hops(mesh) - 1.0;
    pitch * avg_links
}

/// Per-flit traversal energy: router crossings plus wire switching.
#[must_use]
pub fn traversal_energy(
    router_class: RouterClass,
    width_bits: u32,
    avg_hops: f64,
    avg_wire: Millimeters,
) -> Picojoules {
    let router_area = router_class.area(width_bits);
    let per_router = ROUTER_ENERGY_PER_MM2 * router_area.value();
    let width_scale = f64::from(width_bits) / 32.0;
    Picojoules::new(per_router * avg_hops + WIRE_ENERGY_PER_MM * width_scale * avg_wire.value())
}

/// Bisection width of a binary tree: splitting the network into its two
/// root subtrees severs exactly **one** bidirectional link (the root keeps
/// one child on its own side; only the other child's link is cut).
///
/// This is the tree's honest structural weakness against the mesh's `√N`
/// bisection, and the reason the paper leans on application locality
/// ("cores which communicate a lot will be clustered").
#[must_use]
pub fn tree_bisection_links(_tree: &TreeTopology) -> usize {
    1
}

/// Bisection width of a `side × side` mesh: `side` links cross the cut.
#[must_use]
pub fn mesh_bisection_links(mesh: &MeshTopology) -> usize {
    mesh.side()
}

/// One row of the tree-vs-mesh comparison table (experiment E6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Network port count `N`.
    pub ports: usize,
    /// Tree worst-case hops, `2·log₂N − 1`.
    pub tree_worst_hops: usize,
    /// Mesh worst-case hops, `≈2·√N`.
    pub mesh_worst_hops: usize,
    /// Tree average hops under uniform traffic.
    pub tree_avg_hops: f64,
    /// Mesh average hops under uniform traffic.
    pub mesh_avg_hops: f64,
    /// Tree hops between tile-local neighbours.
    pub tree_neighbor_hops: f64,
    /// Router count in the binary tree (`N−1`).
    pub tree_routers: usize,
    /// Router count in the mesh (`N`).
    pub mesh_routers: usize,
    /// Binary-tree router area.
    pub tree_area: SquareMillimeters,
    /// Mesh router area.
    pub mesh_area: SquareMillimeters,
    /// Tree per-flit uniform-traffic energy.
    pub tree_energy: Picojoules,
    /// Mesh per-flit uniform-traffic energy.
    pub mesh_energy: Picojoules,
}

/// Computes the full tree-vs-mesh comparison for `ports` ports on a square
/// `die_edge` die with a `width_bits` data path.
///
/// # Errors
///
/// Returns a [`TopologyError`] if `ports` is not simultaneously a power of
/// two (binary tree) and a perfect square (mesh) — e.g. 64, 256, 1024.
pub fn compare(
    ports: usize,
    die_edge: Millimeters,
    width_bits: u32,
) -> Result<ComparisonRow, TopologyError> {
    let tree = TreeTopology::binary(ports)?;
    let mesh = MeshTopology::new(ports)?;
    let plan = Floorplan::h_tree(&tree, die_edge, die_edge);
    let model = AreaModel::nominal_90nm(width_bits);

    let tree_avg_hops = tree_average_hops(&tree);
    let mesh_avg_hops = mesh_average_hops(&mesh);
    let tree_wire = tree_average_wire_length(&tree, &plan);
    let mesh_wire = mesh_average_wire_length(&mesh, die_edge);

    Ok(ComparisonRow {
        ports,
        tree_worst_hops: tree.worst_case_hops(),
        mesh_worst_hops: mesh.worst_case_hops(),
        tree_avg_hops,
        mesh_avg_hops,
        tree_neighbor_hops: tree_neighbor_hops(&tree),
        tree_routers: tree.router_count(),
        mesh_routers: mesh.router_count(),
        tree_area: model.tree_router_area(&tree),
        mesh_area: model.mesh_total(ports),
        tree_energy: traversal_energy(RouterClass::Binary3x3, width_bits, tree_avg_hops, tree_wire),
        mesh_energy: traversal_energy(RouterClass::Quad5x5, width_bits, mesh_avg_hops, mesh_wire),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_traffic_crosses_one_router_in_binary_tree() {
        let tree = TreeTopology::binary(64).expect("valid");
        assert_eq!(tree_neighbor_hops(&tree), 1.0);
    }

    #[test]
    fn worst_case_formulas_at_64_ports() {
        let row = compare(64, Millimeters::new(10.0), 32).expect("64 works for both");
        assert_eq!(row.tree_worst_hops, 11); // 2·log2(64) − 1
        assert_eq!(row.mesh_worst_hops, 15); // 2·(8−1)+1 ≈ 2·√64
        assert!(row.tree_worst_hops < row.mesh_worst_hops);
    }

    #[test]
    fn average_hops_sanity() {
        let row = compare(64, Millimeters::new(10.0), 32).expect("valid");
        // Mesh 8×8 average Manhattan distance over distinct ordered pairs
        // is 16/3, plus 1 router = 19/3 ≈ 6.33.
        assert!((row.mesh_avg_hops - 19.0 / 3.0).abs() < 1e-9);
        // Tree uniform traffic mostly crosses high levels: between the
        // neighbour case (1) and the worst case (11).
        assert!(row.tree_avg_hops > 5.0 && row.tree_avg_hops < 11.0);
    }

    #[test]
    fn tree_beats_mesh_on_area_and_router_count_shape() {
        let row = compare(64, Millimeters::new(10.0), 32).expect("valid");
        assert_eq!(row.tree_routers, 63);
        assert_eq!(row.mesh_routers, 64);
        assert!(row.tree_area < row.mesh_area);
    }

    #[test]
    fn tree_beats_mesh_on_energy_as_paper_claims() {
        // Section 3 (citing [12]): "a tree is a power-wise better choice
        // than a mesh" even with no link power reduction.
        let row = compare(64, Millimeters::new(10.0), 32).expect("valid");
        assert!(
            row.tree_energy < row.mesh_energy,
            "tree {} vs mesh {}",
            row.tree_energy,
            row.mesh_energy
        );
    }

    #[test]
    fn comparison_scales_to_256_ports() {
        let row = compare(256, Millimeters::new(20.0), 32).expect("256 works for both");
        assert_eq!(row.tree_worst_hops, 15); // 2·8−1
        assert_eq!(row.mesh_worst_hops, 31);
        assert!(row.tree_energy < row.mesh_energy);
    }

    #[test]
    fn non_common_port_count_is_an_error() {
        // 32 is a power of two but not a perfect square.
        assert!(compare(32, Millimeters::new(10.0), 32).is_err());
    }

    #[test]
    fn bisection_favours_the_mesh() {
        let tree = TreeTopology::binary(64).expect("valid");
        let mesh = MeshTopology::new(64).expect("valid");
        assert_eq!(tree_bisection_links(&tree), 1);
        assert_eq!(mesh_bisection_links(&mesh), 8);
    }

    #[test]
    fn mesh_wire_length_uses_pitch() {
        let mesh = MeshTopology::new(64).expect("valid");
        let avg = mesh_average_wire_length(&mesh, Millimeters::new(10.0));
        // 16/3 links × 1.25 mm pitch
        assert!((avg.value() - 16.0 / 3.0 * 1.25).abs() < 1e-9);
    }
}
