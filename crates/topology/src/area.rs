//! Section 6 silicon-area accounting:
//! `Area_total = (N−1)·Area_router + Area_pipelines`.

use crate::{Floorplan, RouterClass, TreeTopology};
use icnoc_units::{Millimeters, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Per-block area constants for a given data-path width.
///
/// The paper's 32-bit, 90 nm values are [`AreaModel::nominal_90nm`]:
/// 0.010 mm² per 3×3 router, 0.022 mm² per 5×5 router, 0.0015 mm² per
/// pipeline stage. Areas scale linearly in the data-path width.
///
/// ```
/// use icnoc_topology::{AreaModel, Floorplan, TreeTopology};
/// use icnoc_units::Millimeters;
///
/// let tree = TreeTopology::binary(64)?;
/// let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
/// let total = AreaModel::nominal_90nm(32)
///     .total(&tree, &plan, Millimeters::new(1.25));
/// // Demonstrator ballpark: the paper reports 0.73 mm² (0.73% of die).
/// assert!(total.total.value() > 0.5 && total.total.value() < 0.9);
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    width_bits: u32,
    stage_area_32bit: SquareMillimeters,
}

/// The output of [`AreaModel::total`]: the area split by contributor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Router count in the network.
    pub router_count: usize,
    /// Intermediate pipeline stage count across all links.
    pub stage_count: usize,
    /// Total router area.
    pub routers: SquareMillimeters,
    /// Total pipeline-stage area.
    pub pipelines: SquareMillimeters,
    /// `routers + pipelines`.
    pub total: SquareMillimeters,
}

impl AreaModel {
    /// The paper's 90 nm constants, scaled to `width_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    #[must_use]
    #[track_caller]
    pub fn nominal_90nm(width_bits: u32) -> Self {
        assert!(width_bits > 0, "data path width must be positive");
        Self {
            width_bits,
            stage_area_32bit: SquareMillimeters::new(0.0015),
        }
    }

    /// The data-path width these areas are scaled to.
    #[must_use]
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Area of one pipeline stage at this width.
    #[must_use]
    pub fn stage_area(&self) -> SquareMillimeters {
        self.stage_area_32bit * (f64::from(self.width_bits) / 32.0)
    }

    /// Area of one router of the given class at this width.
    #[must_use]
    pub fn router_area(&self, class: RouterClass) -> SquareMillimeters {
        class.area(self.width_bits)
    }

    /// Router area for a whole tree: `router_count · Area_router` — the
    /// `(N−1)·Area_router` term for a binary tree.
    #[must_use]
    pub fn tree_router_area(&self, tree: &TreeTopology) -> SquareMillimeters {
        self.router_area(tree.router_class()) * tree.router_count() as f64
    }

    /// Full Section 6 accounting for a placed tree whose links are
    /// pipelined at `max_segment`.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment` is not strictly positive.
    #[must_use]
    pub fn total(
        &self,
        tree: &TreeTopology,
        plan: &Floorplan,
        max_segment: Millimeters,
    ) -> AreaBreakdown {
        let stage_count = plan.total_pipeline_stages(tree, max_segment);
        let routers = self.tree_router_area(tree);
        let pipelines = self.stage_area() * stage_count as f64;
        AreaBreakdown {
            router_count: tree.router_count(),
            stage_count,
            routers,
            pipelines,
            total: routers + pipelines,
        }
    }

    /// Area of an `N`-port mesh of 5×5 routers (one per port), for the
    /// tree-vs-mesh comparison. Inter-router mesh links are short and
    /// unpipelined.
    #[must_use]
    pub fn mesh_total(&self, ports: usize) -> SquareMillimeters {
        self.router_area(RouterClass::Quad5x5) * ports as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demonstrator_breakdown() -> AreaBreakdown {
        let tree = TreeTopology::binary(64).expect("valid");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        AreaModel::nominal_90nm(32).total(&tree, &plan, Millimeters::new(1.25))
    }

    #[test]
    fn demonstrator_area_near_paper_value() {
        // Paper: 0.73 mm², 0.73 % of the 100 mm² die. Our H-tree wire
        // estimate needs slightly fewer pipeline stages than the real
        // layout, landing at 0.64 mm² — same order, same scaling law.
        let b = demonstrator_breakdown();
        assert_eq!(b.router_count, 63);
        assert!((b.routers.value() - 0.63).abs() < 1e-12);
        assert!(b.total.value() > 0.6 && b.total.value() < 0.8, "{:?}", b);
        let frac = b.total.fraction_of(SquareMillimeters::new(100.0));
        assert!(frac < 0.01, "NoC should be <1% of the die, got {frac}");
    }

    #[test]
    fn breakdown_sums() {
        let b = demonstrator_breakdown();
        assert_eq!(b.total, b.routers + b.pipelines);
    }

    #[test]
    fn area_scales_linearly_with_port_count() {
        // Paper: "with a tree topology the area scales linearly with the
        // number of network ports".
        let model = AreaModel::nominal_90nm(32);
        let mut per_port = Vec::new();
        for ports in [16usize, 32, 64, 128, 256] {
            let tree = TreeTopology::binary(ports).expect("power of 2");
            let routers = model.tree_router_area(&tree);
            per_port.push(routers.value() / ports as f64);
        }
        // (N−1)/N per-port router area converges to a constant.
        for w in per_port.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.001);
        }
    }

    #[test]
    fn wider_datapath_scales_all_areas() {
        let m32 = AreaModel::nominal_90nm(32);
        let m64 = AreaModel::nominal_90nm(64);
        assert!((m64.stage_area().value() - 2.0 * m32.stage_area().value()).abs() < 1e-12);
        assert!(
            (m64.router_area(RouterClass::Binary3x3).value()
                - 2.0 * m32.router_area(RouterClass::Binary3x3).value())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn binary_tree_beats_mesh_on_area() {
        // 63 × 0.010 + stages < 64 × 0.022.
        let model = AreaModel::nominal_90nm(32);
        let b = demonstrator_breakdown();
        assert!(b.total < model.mesh_total(64));
    }

    #[test]
    fn quad_tree_has_lower_router_area_than_binary() {
        // Paper Section 6: the quad tree "has lower area".
        let model = AreaModel::nominal_90nm(32);
        let bin = TreeTopology::binary(64).expect("valid");
        let quad = TreeTopology::quad(64).expect("valid");
        assert!(model.tree_router_area(&quad) < model.tree_router_area(&bin));
    }

    proptest! {
        #[test]
        fn total_monotone_in_segment_cap(cap1 in 0.3f64..3.0, shrink in 0.1f64..0.9) {
            // Tighter segment caps can only add stages, never remove them.
            let tree = TreeTopology::binary(64).expect("valid");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            let model = AreaModel::nominal_90nm(32);
            let loose = model.total(&tree, &plan, Millimeters::new(cap1));
            let tight = model.total(&tree, &plan, Millimeters::new(cap1 * shrink));
            prop_assert!(tight.total >= loose.total);
            prop_assert!(tight.stage_count >= loose.stage_count);
        }
    }
}
