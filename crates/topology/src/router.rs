//! Router classes and their Section 6 characterisation.

use icnoc_units::{Gigahertz, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// The two router sizes the paper characterises, named by their port count.
///
/// A binary tree uses 3×3 routers (parent + two children), a quad tree uses
/// 5×5 routers (parent + four children). The constants below are the paper's
/// Section 6 back-annotated results for a 32-bit data path in 90 nm:
///
/// | class | speed | forward latency | area |
/// |---|---|---|---|
/// | 3×3 | 1.4 GHz | 1½ cycles | 0.010 mm² |
/// | 5×5 | 1.2 GHz | 2½ cycles | 0.022 mm² |
///
/// Latencies are stored in **half-cycles** (3 and 5) because the IC-NoC
/// clocks pipeline stages on alternating edges, making the half-cycle the
/// natural latency quantum.
///
/// ```
/// use icnoc_topology::RouterClass;
///
/// assert_eq!(RouterClass::Binary3x3.forward_latency_half_cycles(), 3);
/// assert_eq!(RouterClass::Quad5x5.forward_latency_cycles(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterClass {
    /// 3-port router for binary trees.
    Binary3x3,
    /// 5-port router for quad trees.
    Quad5x5,
}

impl RouterClass {
    /// Number of child ports (tree arity).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            RouterClass::Binary3x3 => 2,
            RouterClass::Quad5x5 => 4,
        }
    }

    /// Total port count (children + parent).
    #[must_use]
    pub fn ports(self) -> usize {
        self.arity() + 1
    }

    /// Maximum internal clock frequency (paper Section 6).
    #[must_use]
    pub fn max_frequency(self) -> Gigahertz {
        match self {
            RouterClass::Binary3x3 => Gigahertz::new(1.4),
            RouterClass::Quad5x5 => Gigahertz::new(1.2),
        }
    }

    /// Forward latency through the router in half-cycles: 3 for the 3×3
    /// (1½ cycles), 5 for the 5×5 (2½ cycles).
    #[must_use]
    pub fn forward_latency_half_cycles(self) -> u32 {
        match self {
            RouterClass::Binary3x3 => 3,
            RouterClass::Quad5x5 => 5,
        }
    }

    /// Forward latency in (fractional) clock cycles.
    #[must_use]
    pub fn forward_latency_cycles(self) -> f64 {
        f64::from(self.forward_latency_half_cycles()) / 2.0
    }

    /// Silicon area for a 32-bit data path (paper Section 6).
    #[must_use]
    pub fn area_32bit(self) -> SquareMillimeters {
        match self {
            RouterClass::Binary3x3 => SquareMillimeters::new(0.010),
            RouterClass::Quad5x5 => SquareMillimeters::new(0.022),
        }
    }

    /// Area scaled linearly to another data-path width.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    #[must_use]
    #[track_caller]
    pub fn area(self, width_bits: u32) -> SquareMillimeters {
        assert!(width_bits > 0, "data path width must be positive");
        self.area_32bit() * (f64::from(width_bits) / 32.0)
    }
}

impl core::fmt::Display for RouterClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RouterClass::Binary3x3 => f.write_str("3x3"),
            RouterClass::Quad5x5 => f.write_str("5x5"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let b = RouterClass::Binary3x3;
        assert_eq!(b.max_frequency(), Gigahertz::new(1.4));
        assert_eq!(b.area_32bit(), SquareMillimeters::new(0.010));
        assert_eq!(b.forward_latency_cycles(), 1.5);
        assert_eq!(b.ports(), 3);

        let q = RouterClass::Quad5x5;
        assert_eq!(q.max_frequency(), Gigahertz::new(1.2));
        assert_eq!(q.area_32bit(), SquareMillimeters::new(0.022));
        assert_eq!(q.forward_latency_cycles(), 2.5);
        assert_eq!(q.ports(), 5);
    }

    #[test]
    fn paper_tradeoff_claims_hold() {
        // "the latency of a 5×5 router is less than the latency of two 3×3
        // routers"
        assert!(
            RouterClass::Quad5x5.forward_latency_half_cycles()
                < 2 * RouterClass::Binary3x3.forward_latency_half_cycles()
        );
        // "the area of a 5×5 router is less than that of three 3×3 routers"
        assert!(
            RouterClass::Quad5x5.area_32bit().value()
                < 3.0 * RouterClass::Binary3x3.area_32bit().value()
        );
        // "the binary tree has better local performance" (1½ vs 2½ cycles)
        assert!(
            RouterClass::Binary3x3.forward_latency_cycles()
                < RouterClass::Quad5x5.forward_latency_cycles()
        );
    }

    #[test]
    fn area_scales_with_width() {
        let a64 = RouterClass::Binary3x3.area(64);
        assert!((a64.value() - 0.020).abs() < 1e-12);
        assert_eq!(
            RouterClass::Binary3x3.area(32),
            SquareMillimeters::new(0.010)
        );
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = RouterClass::Binary3x3.area(0);
    }
}
