//! Section 7 future work: non-tree topologies by breaking rings.
//!
//! The paper proposes augmenting the clock-carrying tree with *ring* links
//! between geographically adjacent leaves, synchronised with traditional
//! mesochronous methods (the clock is not forwarded on ring links, so each
//! crossing pays a synchroniser penalty). Cross-traffic between nearby
//! leaves in different subtrees can then skip the climb to a high ancestor.

use crate::{PortId, TopologyError, TreeKind, TreeTopology};
use serde::{Deserialize, Serialize};

/// A tree augmented with mesochronous ring links between consecutive
/// leaves.
///
/// Routing picks the cheaper of the pure tree path and the ring path, where
/// each ring crossing costs one hop **plus** a synchroniser latency penalty
/// (a brute-force two-flop synchroniser adds two cycles per crossing —
/// exactly the overhead the IC-NoC's forwarded clock avoids on tree links).
///
/// ```
/// use icnoc_topology::{RingAugmentedTree, PortId};
///
/// let net = RingAugmentedTree::binary(64, 2)?;
/// // Ports 31 and 32 are adjacent leaves in different root subtrees: the
/// // tree path crosses the root (11 hops) but the ring path is one link.
/// assert_eq!(net.tree().hops(PortId(31), PortId(32))?, 11);
/// assert_eq!(net.route_hops(PortId(31), PortId(32)), 1);
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingAugmentedTree {
    tree: TreeTopology,
    max_ring_hops: usize,
    sync_penalty_cycles: u32,
}

impl RingAugmentedTree {
    /// Builds a binary tree with ring links, allowing at most
    /// `max_ring_hops` consecutive ring crossings per route.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortCountNotPower`] for invalid port counts.
    pub fn binary(ports: usize, max_ring_hops: usize) -> Result<Self, TopologyError> {
        Ok(Self {
            tree: TreeTopology::new(TreeKind::Binary, ports)?,
            max_ring_hops,
            sync_penalty_cycles: 2,
        })
    }

    /// The underlying clock-carrying tree.
    #[must_use]
    pub fn tree(&self) -> &TreeTopology {
        &self.tree
    }

    /// Maximum consecutive ring crossings a route may use.
    #[must_use]
    pub fn max_ring_hops(&self) -> usize {
        self.max_ring_hops
    }

    /// Synchroniser penalty per ring crossing, in clock cycles.
    #[must_use]
    pub fn sync_penalty_cycles(&self) -> u32 {
        self.sync_penalty_cycles
    }

    /// Sets the per-crossing synchroniser penalty (default: 2 cycles for a
    /// brute-force two-flop synchroniser).
    #[must_use]
    pub fn with_sync_penalty(mut self, cycles: u32) -> Self {
        self.sync_penalty_cycles = cycles;
        self
    }

    /// Hop count of the ring path between two ports, if within the ring
    /// budget.
    fn ring_hops(&self, from: PortId, to: PortId) -> Option<usize> {
        let dist = from.index().abs_diff(to.index());
        (dist > 0 && dist <= self.max_ring_hops).then_some(dist)
    }

    /// Router/link hops of the chosen (cheaper) route.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    #[must_use]
    pub fn route_hops(&self, from: PortId, to: PortId) -> usize {
        let tree_hops = self.tree.hops(from, to).expect("ports must be in range");
        match self.ring_hops(from, to) {
            Some(r) if r < tree_hops => r,
            _ => tree_hops,
        }
    }

    /// Latency estimate in cycles: tree hops cost the 3×3 router latency
    /// (1½ cycles), ring crossings cost one cycle plus the synchroniser
    /// penalty. The cheaper route wins.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    #[must_use]
    pub fn route_latency_cycles(&self, from: PortId, to: PortId) -> f64 {
        let per_router = self.tree.router_class().forward_latency_cycles();
        let tree_cost =
            self.tree.hops(from, to).expect("ports must be in range") as f64 * per_router;
        let ring_cost = self
            .ring_hops(from, to)
            .map(|r| r as f64 * (1.0 + f64::from(self.sync_penalty_cycles)));
        match ring_cost {
            Some(rc) if rc < tree_cost => rc,
            _ => tree_cost,
        }
    }

    /// Whether the route between two ports uses ring links.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    #[must_use]
    pub fn uses_ring(&self, from: PortId, to: PortId) -> bool {
        let tree_hops = self.tree.hops(from, to).expect("ports must be in range");
        matches!(self.ring_hops(from, to), Some(r) if r < tree_hops)
    }

    /// Average route latency over all ordered distinct pairs, for the E13
    /// ablation (with vs without rings).
    #[must_use]
    pub fn average_latency_cycles(&self) -> f64 {
        let n = self.tree.num_ports();
        let mut total = 0.0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.route_latency_cycles(PortId(a as u32), PortId(b as u32));
                }
            }
        }
        total / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_shortcuts_cross_subtree_neighbors() {
        let net = RingAugmentedTree::binary(64, 2).expect("valid");
        assert!(net.uses_ring(PortId(31), PortId(32)));
        assert_eq!(net.route_hops(PortId(31), PortId(32)), 1);
        // Tile-local pairs keep the tree: 1 hop either way, tree wins ties.
        assert!(!net.uses_ring(PortId(0), PortId(1)));
    }

    #[test]
    fn ring_budget_limits_reach() {
        let net = RingAugmentedTree::binary(64, 2).expect("valid");
        // Distance 3 exceeds the budget of 2: must take the tree.
        assert!(!net.uses_ring(PortId(30), PortId(33)));
    }

    #[test]
    fn sync_penalty_can_make_ring_unattractive() {
        let cheap = RingAugmentedTree::binary(64, 4)
            .expect("valid")
            .with_sync_penalty(0);
        let costly = RingAugmentedTree::binary(64, 4)
            .expect("valid")
            .with_sync_penalty(50);
        let (a, b) = (PortId(31), PortId(33));
        assert!(cheap.route_latency_cycles(a, b) < costly.route_latency_cycles(a, b));
        // With a 50-cycle penalty the tree path (11 hops × 1.5 = 16.5) wins.
        assert_eq!(costly.route_latency_cycles(a, b), 16.5);
    }

    #[test]
    fn rings_lower_average_latency() {
        let plain = RingAugmentedTree::binary(64, 0).expect("valid");
        let ringed = RingAugmentedTree::binary(64, 4).expect("valid");
        assert!(ringed.average_latency_cycles() < plain.average_latency_cycles());
    }

    proptest! {
        #[test]
        fn ring_never_worse_than_tree(
            a in 0u32..64, b in 0u32..64, reach in 0usize..8
        ) {
            let plain = RingAugmentedTree::binary(64, 0).expect("valid");
            let ringed = RingAugmentedTree::binary(64, reach).expect("valid");
            let (a, b) = (PortId(a), PortId(b));
            prop_assert!(ringed.route_hops(a, b) <= plain.route_hops(a, b));
            prop_assert!(
                ringed.route_latency_cycles(a, b) <= plain.route_latency_cycles(a, b)
            );
        }
    }
}
