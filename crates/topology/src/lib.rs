//! NoC topologies, floorplanning and area models for the IC-NoC.
//!
//! The IC-NoC distributes its clock along the branches of a **tree**-shaped
//! network (Section 3 of the paper), so this crate provides:
//!
//! * [`TreeTopology`] — binary trees of 3×3 routers and quad trees of 5×5
//!   routers, with up/down tree routing and hop analytics
//!   (worst case `2·log₂N − 1` for a binary tree);
//! * [`MeshTopology`] — the XY-routed 2-D mesh the paper compares against
//!   (worst case `2·√N` hops);
//! * [`Floorplan`] — a recursive H-tree placement on a rectangular die,
//!   yielding the per-link wire lengths that feed the timing model, plus
//!   link pipelining into bounded-length segments;
//! * [`AreaModel`] — Section 6's silicon area accounting
//!   (`Area_total = (N−1)·Area_router + Area_pipelines`);
//! * [`analysis`] — tree-vs-mesh comparison metrics (hops, routers, area,
//!   traversed wire length and a per-flit energy estimate);
//! * [`RingAugmentedTree`] — the Section 7 future-work extension that closes
//!   rings between adjacent leaves using conventional mesochronous links.
//!
//! # Example
//!
//! ```
//! use icnoc_topology::{RouterClass, TreeTopology};
//!
//! let tree = TreeTopology::binary(64)?;
//! assert_eq!(tree.router_count(), 63);
//! assert_eq!(tree.worst_case_hops(), 11); // 2·log2(64) − 1
//! assert_eq!(tree.router_class(), RouterClass::Binary3x3);
//! # Ok::<(), icnoc_topology::TopologyError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod area;
mod floorplan;
mod ids;
mod mesh;
mod ring;
mod router;
mod tree;

pub use area::{AreaBreakdown, AreaModel};
pub use floorplan::{Floorplan, LinkGeometry, Placement};
pub use ids::{LinkId, NodeId, PortId};
pub use mesh::MeshTopology;
pub use ring::RingAugmentedTree;
pub use router::RouterClass;
pub use tree::{TopologyError, TreeKind, TreePath, TreeTopology};
