//! Tree topologies: the backbone of the IC-NoC architecture.
//!
//! The clock distribution requires a tree (Section 3: "due to the tree
//! topology required by the clock distribution, no converging paths are
//! allowed in the network"), so routing is the classic up/down tree scheme:
//! climb towards the root until the lowest common ancestor, then descend.

use crate::{LinkId, NodeId, PortId, RouterClass};
use serde::{Deserialize, Serialize};

/// Which tree the paper's Section 6 trade-off discussion considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeKind {
    /// Binary tree of [`RouterClass::Binary3x3`] routers — the demonstrator's
    /// choice ("we use only 3×3 routers in a binary tree topology").
    Binary,
    /// Quad tree of [`RouterClass::Quad5x5`] routers.
    Quad,
}

impl TreeKind {
    /// Children per router.
    #[must_use]
    pub fn arity(self) -> usize {
        self.router_class().arity()
    }

    /// The router class this tree is built from.
    #[must_use]
    pub fn router_class(self) -> RouterClass {
        match self {
            TreeKind::Binary => RouterClass::Binary3x3,
            TreeKind::Quad => RouterClass::Quad5x5,
        }
    }
}

impl core::fmt::Display for TreeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TreeKind::Binary => f.write_str("binary"),
            TreeKind::Quad => f.write_str("quad"),
        }
    }
}

/// Errors from topology construction or queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyError {
    /// The requested port count is not a positive power of the tree arity.
    PortCountNotPower {
        /// The requested tree kind.
        kind: TreeKind,
        /// The offending port count.
        ports: usize,
    },
    /// A port id exceeded the topology's port count.
    PortOutOfRange {
        /// The offending port.
        port: PortId,
        /// Number of ports in the topology.
        ports: usize,
    },
    /// A mesh was requested with a port count that is not a perfect square.
    PortCountNotSquare {
        /// The offending port count.
        ports: usize,
    },
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::PortCountNotPower { kind, ports } => write!(
                f,
                "a {kind} tree needs a positive power of {} ports, got {ports}",
                kind.arity()
            ),
            TopologyError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (topology has {ports} ports)")
            }
            TopologyError::PortCountNotSquare { ports } => {
                write!(f, "a mesh needs a perfect-square port count, got {ports}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: u32,
}

/// A perfect tree of routers with IP-core ports at the leaves.
///
/// Node ids are assigned breadth-first: routers `0..router_count()` (root is
/// `NodeId(0)`), then leaves `router_count()..`. Every non-root node owns
/// exactly one link — towards its parent — identified by the node's own
/// index as a [`LinkId`].
///
/// ```
/// use icnoc_topology::{PortId, TreeTopology};
///
/// let tree = TreeTopology::binary(8)?;
/// assert_eq!(tree.router_count(), 7);
/// let path = tree.route(PortId(0), PortId(7))?;
/// assert_eq!(path.router_hops(), 5); // 2·log2(8) − 1
/// let local = tree.route(PortId(0), PortId(1))?;
/// assert_eq!(local.router_hops(), 1); // neighbours share one 3×3 router
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeTopology {
    kind: TreeKind,
    depth: u32,
    nodes: Vec<Node>,
    router_count: usize,
    leaf_count: usize,
}

impl TreeTopology {
    /// Builds a binary tree (3×3 routers) with `ports` leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortCountNotPower`] unless `ports` is a
    /// power of two and at least 2.
    pub fn binary(ports: usize) -> Result<Self, TopologyError> {
        Self::new(TreeKind::Binary, ports)
    }

    /// Builds a quad tree (5×5 routers) with `ports` leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortCountNotPower`] unless `ports` is a
    /// power of four and at least 4.
    pub fn quad(ports: usize) -> Result<Self, TopologyError> {
        Self::new(TreeKind::Quad, ports)
    }

    /// Builds a tree of the given kind with `ports` leaves.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortCountNotPower`] unless `ports` is a
    /// positive power of the arity (and more than one level, i.e. at least
    /// `arity` ports).
    pub fn new(kind: TreeKind, ports: usize) -> Result<Self, TopologyError> {
        let k = kind.arity();
        let mut depth = 0u32;
        let mut n = 1usize;
        while n < ports {
            n *= k;
            depth += 1;
        }
        if n != ports || depth == 0 {
            return Err(TopologyError::PortCountNotPower { kind, ports });
        }

        // Router level sizes: k^0, k^1, ..., k^(depth-1); leaves are level
        // `depth`.
        let mut level_offset = Vec::with_capacity(depth as usize + 1);
        let mut offset = 0usize;
        let mut width = 1usize;
        for _ in 0..depth {
            level_offset.push(offset);
            offset += width;
            width *= k;
        }
        let router_count = offset;
        level_offset.push(router_count); // leaves start here
        let leaf_count = ports;
        let total = router_count + leaf_count;

        let mut nodes = vec![
            Node {
                parent: None,
                children: Vec::new(),
                depth: 0,
            };
            total
        ];
        // Wire parents/children level by level.
        let mut width = 1usize;
        for level in 0..depth as usize {
            let this = level_offset[level];
            let next = level_offset[level + 1];
            for j in 0..width {
                let me = NodeId((this + j) as u32);
                nodes[me.index()].depth = level as u32;
                for c in 0..k {
                    let child = NodeId((next + k * j + c) as u32);
                    nodes[me.index()].children.push(child);
                    nodes[child.index()].parent = Some(me);
                }
            }
            width *= k;
        }
        for leaf in &mut nodes[router_count..total] {
            leaf.depth = depth;
        }

        Ok(Self {
            kind,
            depth,
            nodes,
            router_count,
            leaf_count,
        })
    }

    /// The tree kind.
    #[must_use]
    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// The router class used throughout the tree.
    #[must_use]
    pub fn router_class(&self) -> RouterClass {
        self.kind.router_class()
    }

    /// Number of network ports (leaves).
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.leaf_count
    }

    /// Number of routers: `(N−1)/(arity−1)` for N leaves.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.router_count
    }

    /// Total node count (routers + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of router levels; leaves sit at this depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The root router.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The parent of `node`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// The children of `node` (empty for leaves).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Depth of `node` (root = 0, leaves = [`depth`](Self::depth)).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node_depth(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].depth
    }

    /// Whether `node` is a router.
    #[must_use]
    pub fn is_router(&self, node: NodeId) -> bool {
        node.index() < self.router_count
    }

    /// Whether `node` is a leaf (port attachment).
    #[must_use]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        !self.is_router(node) && node.index() < self.nodes.len()
    }

    /// The leaf node carrying `port`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn leaf(&self, port: PortId) -> Result<NodeId, TopologyError> {
        if port.index() >= self.leaf_count {
            return Err(TopologyError::PortOutOfRange {
                port,
                ports: self.leaf_count,
            });
        }
        Ok(NodeId((self.router_count + port.index()) as u32))
    }

    /// The port carried by `node`, or `None` if it is a router.
    #[must_use]
    pub fn port_of(&self, node: NodeId) -> Option<PortId> {
        if self.is_leaf(node) {
            Some(PortId((node.index() - self.router_count) as u32))
        } else {
            None
        }
    }

    /// The router a port attaches to.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn leaf_router(&self, port: PortId) -> Result<NodeId, TopologyError> {
        let leaf = self.leaf(port)?;
        Ok(self.parent(leaf).expect("leaves always have a parent"))
    }

    /// Iterates over all router node ids, breadth-first from the root.
    pub fn routers(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.router_count).map(|i| NodeId(i as u32))
    }

    /// Iterates over all leaf node ids, in port order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.router_count..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterates over all ports.
    pub fn ports(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..self.leaf_count).map(|i| PortId(i as u32))
    }

    /// Iterates over all links. Link `l` connects node `NodeId(l.0)` to its
    /// parent; the root has no link, so ids start at 1.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (1..self.nodes.len()).map(|i| LinkId(i as u32))
    }

    /// Number of links: every node except the root owns one.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The `(child, parent)` endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range or names the root.
    #[must_use]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let child = NodeId(link.0);
        let parent = self.parent(child).expect("link ids never name the root");
        (child, parent)
    }

    /// The link from `node` towards its parent, or `None` for the root.
    #[must_use]
    pub fn uplink(&self, node: NodeId) -> Option<LinkId> {
        self.parent(node).map(|_| LinkId(node.0))
    }

    /// Lowest common ancestor of two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.node_depth(a) > self.node_depth(b) {
            a = self.parent(a).expect("deeper node has a parent");
        }
        while self.node_depth(b) > self.node_depth(a) {
            b = self.parent(b).expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root while unequal");
            b = self.parent(b).expect("non-root while unequal");
        }
        a
    }

    /// Routes a packet from `from` to `to`: up to the lowest common
    /// ancestor, then down. The returned path includes both leaf endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn route(&self, from: PortId, to: PortId) -> Result<TreePath, TopologyError> {
        let src = self.leaf(from)?;
        let dst = self.leaf(to)?;
        if src == dst {
            return Ok(TreePath { nodes: vec![src] });
        }
        let lca = self.lowest_common_ancestor(src, dst);
        let mut up = Vec::new();
        let mut n = src;
        while n != lca {
            up.push(n);
            n = self.parent(n).expect("walking up to an ancestor");
        }
        up.push(lca);
        let mut down = Vec::new();
        let mut n = dst;
        while n != lca {
            down.push(n);
            n = self.parent(n).expect("walking up to an ancestor");
        }
        down.reverse();
        up.extend(down);
        Ok(TreePath { nodes: up })
    }

    /// Router hops between two ports (routers traversed by a packet).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn hops(&self, from: PortId, to: PortId) -> Result<usize, TopologyError> {
        Ok(self.route(from, to)?.router_hops())
    }

    /// Worst-case router hops: `2·depth − 1` (`2·log_k N − 1`), through the
    /// root.
    #[must_use]
    pub fn worst_case_hops(&self) -> usize {
        2 * self.depth as usize - 1
    }
}

/// A source-to-destination path through a [`TreeTopology`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreePath {
    nodes: Vec<NodeId>,
}

impl TreePath {
    /// All nodes on the path, source leaf first, destination leaf last.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of routers traversed (total nodes minus the two leaf
    /// endpoints; 0 for a self-route).
    #[must_use]
    pub fn router_hops(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }

    /// The links traversed, in order. Each consecutive node pair is a
    /// parent/child pair, and the link id is the child's node id.
    #[must_use]
    pub fn links(&self, tree: &TreeTopology) -> Vec<LinkId> {
        self.nodes
            .windows(2)
            .map(|pair| {
                let (a, b) = (pair[0], pair[1]);
                if tree.parent(a) == Some(b) {
                    LinkId(a.0) // climbing: a -> parent
                } else {
                    debug_assert_eq!(tree.parent(b), Some(a), "path edges are tree edges");
                    LinkId(b.0) // descending: parent -> b
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_64_matches_demonstrator_shape() {
        let t = TreeTopology::binary(64).expect("64 is a power of 2");
        assert_eq!(t.num_ports(), 64);
        assert_eq!(t.router_count(), 63);
        assert_eq!(t.depth(), 6);
        assert_eq!(t.worst_case_hops(), 11);
        assert_eq!(t.link_count(), 63 + 64 - 1);
    }

    #[test]
    fn quad_64_shape() {
        let t = TreeTopology::quad(64).expect("64 is a power of 4");
        assert_eq!(t.router_count(), 21); // 1 + 4 + 16
        assert_eq!(t.depth(), 3);
        assert_eq!(t.worst_case_hops(), 5);
    }

    #[test]
    fn rejects_non_power_port_counts() {
        assert!(matches!(
            TreeTopology::binary(48),
            Err(TopologyError::PortCountNotPower { .. })
        ));
        assert!(matches!(
            TreeTopology::quad(32),
            Err(TopologyError::PortCountNotPower { .. })
        ));
        // A single port (k^0) is also rejected: no network to build.
        assert!(TreeTopology::binary(1).is_err());
    }

    #[test]
    fn neighbouring_ports_share_one_router() {
        // Section 3: "communication between two neighboring cores in a
        // binary tree only has to pass a single 3×3 router".
        let t = TreeTopology::binary(64).expect("valid");
        let path = t.route(PortId(6), PortId(7)).expect("valid ports");
        assert_eq!(path.router_hops(), 1);
    }

    #[test]
    fn cross_root_route_hits_worst_case() {
        let t = TreeTopology::binary(64).expect("valid");
        let hops = t.hops(PortId(0), PortId(63)).expect("valid ports");
        assert_eq!(hops, t.worst_case_hops());
        let path = t.route(PortId(0), PortId(63)).expect("valid ports");
        assert!(path.nodes().contains(&t.root()));
    }

    #[test]
    fn self_route_is_trivial() {
        let t = TreeTopology::binary(8).expect("valid");
        let path = t.route(PortId(3), PortId(3)).expect("valid port");
        assert_eq!(path.router_hops(), 0);
        assert_eq!(path.nodes().len(), 1);
    }

    #[test]
    fn parenthood_is_consistent() {
        let t = TreeTopology::quad(16).expect("valid");
        for r in t.routers() {
            for &c in t.children(r) {
                assert_eq!(t.parent(c), Some(r));
                assert_eq!(t.node_depth(c), t.node_depth(r) + 1);
            }
        }
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn leaves_map_to_ports_bijectively() {
        let t = TreeTopology::binary(16).expect("valid");
        for p in t.ports() {
            let leaf = t.leaf(p).expect("in range");
            assert!(t.is_leaf(leaf));
            assert_eq!(t.port_of(leaf), Some(p));
        }
        assert_eq!(t.port_of(t.root()), None);
        assert!(t.leaf(PortId(16)).is_err());
    }

    #[test]
    fn link_endpoints_and_uplinks_agree() {
        let t = TreeTopology::binary(8).expect("valid");
        for link in t.links() {
            let (child, parent) = t.link_endpoints(link);
            assert_eq!(t.parent(child), Some(parent));
            assert_eq!(t.uplink(child), Some(link));
        }
        assert_eq!(t.uplink(t.root()), None);
    }

    #[test]
    fn path_links_have_matching_length() {
        let t = TreeTopology::binary(32).expect("valid");
        let path = t.route(PortId(3), PortId(29)).expect("valid ports");
        let links = path.links(&t);
        assert_eq!(links.len(), path.nodes().len() - 1);
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = TreeTopology::binary(48).unwrap_err().to_string();
        assert!(msg.contains("power of 2"));
        assert!(msg.contains("48"));
    }

    proptest! {
        /// Routing invariants over random binary-tree sizes and port pairs.
        #[test]
        fn route_reaches_destination_within_worst_case(
            depth in 1u32..8, seed in any::<u64>()
        ) {
            let ports = 1usize << depth;
            let t = TreeTopology::binary(ports).expect("power of 2");
            let a = PortId((seed % ports as u64) as u32);
            let b = PortId(((seed >> 16) % ports as u64) as u32);
            let path = t.route(a, b).expect("valid ports");
            prop_assert_eq!(*path.nodes().first().expect("non-empty"), t.leaf(a).expect("in range"));
            prop_assert_eq!(*path.nodes().last().expect("non-empty"), t.leaf(b).expect("in range"));
            prop_assert!(path.router_hops() <= t.worst_case_hops());
            // Every interior node is a router, endpoints are leaves.
            if path.nodes().len() >= 2 {
                for &n in &path.nodes()[1..path.nodes().len() - 1] {
                    prop_assert!(t.is_router(n));
                }
            }
        }

        /// Hop counts are symmetric.
        #[test]
        fn hops_symmetric(depth in 1u32..7, a in any::<u32>(), b in any::<u32>()) {
            let ports = 1usize << depth;
            let t = TreeTopology::binary(ports).expect("power of 2");
            let a = PortId(a % ports as u32);
            let b = PortId(b % ports as u32);
            prop_assert_eq!(
                t.hops(a, b).expect("valid"),
                t.hops(b, a).expect("valid")
            );
        }

        /// Router count obeys the closed form (N−1)/(k−1).
        #[test]
        fn router_count_closed_form(depth in 1u32..7) {
            let ports = 1usize << depth;
            let bin = TreeTopology::binary(ports).expect("power of 2");
            prop_assert_eq!(bin.router_count(), ports - 1);
            if depth % 2 == 0 {
                let quad = TreeTopology::quad(ports).expect("power of 4");
                prop_assert_eq!(quad.router_count(), (ports - 1) / 3);
            }
        }
    }
}
