//! Identifier newtypes for topology elements.

use serde::{Deserialize, Serialize};

/// Identifies a node (router or leaf port attachment point) in a topology.
///
/// Node numbering is topology-specific; for a [`TreeTopology`] routers come
/// first in breadth-first order (root is `NodeId(0)`), followed by the
/// leaves.
///
/// [`TreeTopology`]: crate::TreeTopology
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a network port — an attachment point for an IP core (the
/// paper's demonstrator has 64 of them, two per processing tile).
///
/// Ports are numbered `0..num_ports` left-to-right across the leaves.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PortId(pub u32);

impl PortId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for PortId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a bidirectional link (a pair of unidirectional handshake
/// channels in the IC-NoC).
///
/// In a tree every non-root node owns exactly one link — the one towards its
/// parent — so `LinkId` equals the child's [`NodeId`] index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for LinkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_distinct_prefixes() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PortId(3).to_string(), "p3");
        assert_eq!(LinkId(3).to_string(), "l3");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<NodeId> = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(PortId(1) < PortId(2));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(PortId(7).index(), 7);
        assert_eq!(LinkId(7).index(), 7);
    }
}
