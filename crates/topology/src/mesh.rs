//! The 2-D mesh baseline the paper argues against (Section 3).

use crate::{NodeId, PortId, TopologyError};
use serde::{Deserialize, Serialize};

/// A `side × side` 2-D mesh of 5×5 routers (four neighbours + one local
/// port), routed with dimension-ordered XY routing.
///
/// This is the comparison topology of Section 3: worst-case hop count of
/// roughly `2·√N` against the tree's `2·log₂N − 1`, one router per port
/// against the tree's `N−1` (binary) or `(N−1)/3` (quad) routers.
///
/// ```
/// use icnoc_topology::{MeshTopology, PortId};
///
/// let mesh = MeshTopology::new(64)?;
/// assert_eq!(mesh.side(), 8);
/// assert_eq!(mesh.worst_case_hops(), 15); // corner to corner
/// assert_eq!(mesh.hops(PortId(0), PortId(63))?, 15);
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshTopology {
    side: usize,
}

impl MeshTopology {
    /// Builds a mesh with `ports` routers (one port each).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortCountNotSquare`] unless `ports` is a
    /// perfect square of at least 4.
    pub fn new(ports: usize) -> Result<Self, TopologyError> {
        let side = (ports as f64).sqrt().round() as usize;
        if side < 2 || side * side != ports {
            return Err(TopologyError::PortCountNotSquare { ports });
        }
        Ok(Self { side })
    }

    /// Routers per die edge.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of ports (= routers: one IP core per router).
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.side * self.side
    }

    /// Number of routers.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.num_ports()
    }

    /// Number of bidirectional inter-router links: `2·side·(side−1)`.
    #[must_use]
    pub fn link_count(&self) -> usize {
        2 * self.side * (self.side - 1)
    }

    /// Grid coordinates `(x, y)` of a port's router.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn coordinates(&self, port: PortId) -> Result<(usize, usize), TopologyError> {
        if port.index() >= self.num_ports() {
            return Err(TopologyError::PortOutOfRange {
                port,
                ports: self.num_ports(),
            });
        }
        Ok((port.index() % self.side, port.index() / self.side))
    }

    /// Router hops from `from` to `to` under XY routing: the Manhattan
    /// distance plus one (the source router also counts as a traversed
    /// router, matching how tree hops are counted).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn hops(&self, from: PortId, to: PortId) -> Result<usize, TopologyError> {
        if from == to {
            // Self-route never enters the network.
            self.coordinates(from)?;
            return Ok(0);
        }
        let (ax, ay) = self.coordinates(from)?;
        let (bx, by) = self.coordinates(to)?;
        Ok(ax.abs_diff(bx) + ay.abs_diff(by) + 1)
    }

    /// The XY route as a sequence of router nodes (router id = port id).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::PortOutOfRange`] for unknown ports.
    pub fn route(&self, from: PortId, to: PortId) -> Result<Vec<NodeId>, TopologyError> {
        let (ax, ay) = self.coordinates(from)?;
        let (bx, by) = self.coordinates(to)?;
        let mut path = Vec::new();
        let (mut x, mut y) = (ax, ay);
        path.push(self.node_at(x, y));
        while x != bx {
            x = if bx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, y));
        }
        while y != by {
            y = if by > y { y + 1 } else { y - 1 };
            path.push(self.node_at(x, y));
        }
        Ok(path)
    }

    /// Worst-case hops: corner to corner, `2·(side−1) + 1 ≈ 2·√N`.
    #[must_use]
    pub fn worst_case_hops(&self) -> usize {
        2 * (self.side - 1) + 1
    }

    fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.side + x) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_non_square_counts() {
        assert!(MeshTopology::new(48).is_err());
        assert!(MeshTopology::new(2).is_err());
        assert!(MeshTopology::new(0).is_err());
    }

    #[test]
    fn mesh_64_shape() {
        let m = MeshTopology::new(64).expect("square");
        assert_eq!(m.side(), 8);
        assert_eq!(m.router_count(), 64);
        assert_eq!(m.link_count(), 112);
    }

    #[test]
    fn paper_hop_comparison_64_ports() {
        // Section 3: tree worst case 2·log2 N − 1 = 11 beats mesh ~2·√N.
        let m = MeshTopology::new(64).expect("square");
        assert_eq!(m.worst_case_hops(), 15);
        assert!(m.worst_case_hops() > 11);
    }

    #[test]
    fn route_follows_xy_order() {
        let m = MeshTopology::new(16).expect("square");
        // From (1,0)=p1 to (3,2)=p11: x first, then y.
        let path = m.route(PortId(1), PortId(11)).expect("valid ports");
        let coords: Vec<(usize, usize)> = path
            .iter()
            .map(|n| (n.index() % 4, n.index() / 4))
            .collect();
        assert_eq!(coords, vec![(1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]);
        assert_eq!(path.len(), m.hops(PortId(1), PortId(11)).expect("valid"));
    }

    #[test]
    fn self_route_has_no_hops() {
        let m = MeshTopology::new(16).expect("square");
        assert_eq!(m.hops(PortId(5), PortId(5)).expect("valid"), 0);
    }

    #[test]
    fn out_of_range_port_is_an_error() {
        let m = MeshTopology::new(16).expect("square");
        assert!(m.hops(PortId(16), PortId(0)).is_err());
        assert!(m.coordinates(PortId(99)).is_err());
    }

    proptest! {
        #[test]
        fn hops_symmetric_and_bounded(side in 2usize..12, a in any::<u32>(), b in any::<u32>()) {
            let m = MeshTopology::new(side * side).expect("square");
            let n = m.num_ports() as u32;
            let a = PortId(a % n);
            let b = PortId(b % n);
            let h = m.hops(a, b).expect("valid");
            prop_assert_eq!(h, m.hops(b, a).expect("valid"));
            prop_assert!(h <= m.worst_case_hops());
        }

        #[test]
        fn route_length_matches_hops(side in 2usize..10, a in any::<u32>(), b in any::<u32>()) {
            let m = MeshTopology::new(side * side).expect("square");
            let n = m.num_ports() as u32;
            let a = PortId(a % n);
            let b = PortId(b % n);
            prop_assume!(a != b);
            let path = m.route(a, b).expect("valid");
            prop_assert_eq!(path.len(), m.hops(a, b).expect("valid"));
            // consecutive routers are grid neighbours
            for w in path.windows(2) {
                let (x1, y1) = (w[0].index() % side, w[0].index() / side);
                let (x2, y2) = (w[1].index() % side, w[1].index() / side);
                prop_assert_eq!(x1.abs_diff(x2) + y1.abs_diff(y2), 1);
            }
        }
    }
}
