//! A minimal JSON value, writer and parser.
//!
//! The workspace's `serde` is an offline marker-trait stub with no
//! serialization backend, so the explore subsystem carries its own tiny
//! JSON layer: enough to round-trip cached [`crate::JobOutcome`]s and to
//! emit `BENCH_explore.json`. It supports the full JSON grammar except
//! `\u` escapes beyond the basic multilingual plane handling below, which
//! is all the cache format needs (keys and values are ASCII).

use std::fmt::Write as _;

/// A parsed JSON document node.
///
/// Objects preserve insertion order (they are association lists, not
/// maps) so that serialisation is deterministic and byte-stable — a
/// property the cache keys and the jobs-1-vs-jobs-8 equality test rely
/// on.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; always carried as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered association list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a [`JsonValue::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`JsonValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is a [`JsonValue::Arr`].
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace), deterministically.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation and trailing newline-free
    /// pretty layout, deterministically.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_f64(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns `Err` with a short human-readable
    /// message (byte offset included) on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a float so that it parses back to the same bits: integers get no
/// fraction, everything else uses the shortest `{}` representation (Rust's
/// float formatting is round-trip exact). Non-finite values have no JSON
/// spelling; they are clamped to `null`.
fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("ic-noc \"demo\"".into())),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "nums".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(1.0),
                    JsonValue::Num(-2.5),
                    JsonValue::Num(1e-3),
                ]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = JsonValue::parse(r#"{"a": 3, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("x"));
        let arr = doc.get("c").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1.2.3", "{} extra"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for n in [0.0, 1.0, -7.0, 0.1, 1.0 / 3.0, 1e15, 123456.789] {
            let mut out = String::new();
            write_f64(&mut out, n);
            let back = JsonValue::parse(&out).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "for {n}");
        }
    }
}
