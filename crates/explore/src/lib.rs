//! Parallel design-space exploration for the IC-NoC.
//!
//! The paper's central claim — that timing integrity is a **local,
//! per-link** property, so the architecture scales "to any size" — is
//! inherently a claim about a *design space*, not a single design point.
//! This crate turns the workspace's analytic models and cycle-accurate
//! simulator into a sweep engine that can walk that space:
//!
//! * [`GridSpec`] — a declarative parameter grid (tree kind, port count,
//!   die size, data-path width, clock frequency or half-period, process
//!   corner, traffic pattern, cycle budget, fault-soak level) parsed
//!   from a compact text grammar and resolved into an ordered job list;
//! * [`run_indexed`] — a deterministic work-stealing executor over
//!   `std::thread`: results land in per-index slots and every job's
//!   seed is the [`stable_hash`] of its own config, so output is
//!   bit-identical for 1 worker or 64;
//! * [`ResultCache`] — a content-addressed on-disk cache keyed by the
//!   canonical config **plus** the crate and report schema versions, so
//!   re-runs are instant and stale formats self-invalidate;
//! * [`Analysis`] — Pareto fronts over (frequency ↑, throughput ↑,
//!   recovered-fault rate ↑, p99 latency ↓) and the max-safe-frequency
//!   surface per physical design, serialised to `BENCH_explore.json`
//!   and rendered as tables.
//!
//! # Example
//!
//! ```
//! use icnoc_explore::{run_sweep, GridSpec, SweepOptions};
//!
//! // Two operating points of a 16-port binary tree, executed in
//! // parallel; the analysis is identical for any worker count.
//! let grid = GridSpec::parse("ports=16;cycles=200;freq=0.9,1.0")?;
//! let opts = SweepOptions { jobs: 2, ..SweepOptions::default() };
//! let (analysis, stats) = run_sweep(&grid, &opts, |_, _| {});
//! assert_eq!(stats.total, 2);
//! assert!(analysis.feasible_count() >= 1);
//! # Ok::<(), icnoc_explore::GridError>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod executor;
mod grid;
mod job;
pub mod json;
mod pareto;
mod sweep;

pub use cache::{CacheClaim, CacheStats, ResultCache, DEFAULT_CACHE_DIR};
pub use executor::{run_indexed, run_isolated};
pub use grid::{pattern_from_spec, stable_hash, GridError, GridSpec, JobConfig, AXIS_NAMES};
pub use job::{run_job, run_job_with_kernel, run_job_with_options, JobOutcome, JobPerf, K_SIGMA};
pub use json::JsonValue;
pub use pareto::{
    pareto_dominates, pareto_objectives, Analysis, SurfacePoint, ANALYSIS_SCHEMA_VERSION,
};
pub use sweep::{run_sweep, run_sweep_with, SweepEvent, SweepOptions, SweepStats};
