//! Folding job outcomes into Pareto fronts and safe-frequency surfaces.
//!
//! The sweep's four objectives are the paper's own trade-off axes:
//! **clock frequency** (max), **delivered throughput** (max),
//! **recovered-fault rate** (max) and **p99 latency** (min). A feasible
//! outcome sits on the front iff no other feasible outcome is at least
//! as good on every axis and strictly better on one.
//!
//! The *safe-frequency surface* answers the complementary question: for
//! each distinct physical design (tree kind, ports, die, width, corner),
//! what is the fastest timing-safe clock — the design-space rendering of
//! the paper's Figure 7 frequency/length trade-off.

use crate::job::JobOutcome;
use crate::json::JsonValue;

/// Schema version stamped into `BENCH_explore.json`.
pub const ANALYSIS_SCHEMA_VERSION: u32 = 1;

/// One entry of the max-safe-frequency surface: a distinct physical
/// design and its degradation headroom.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfacePoint {
    /// Tree kind label (`binary` / `quad`).
    pub kind: String,
    /// Network port count.
    pub ports: usize,
    /// Die edge (mm).
    pub die_mm: f64,
    /// Data-path width (bits).
    pub width_bits: u32,
    /// Process-corner label.
    pub corner: String,
    /// Fastest timing-safe clock at this corner (GHz).
    pub safe_freq_ghz: f64,
    /// Longest pipeline segment of the floorplan (mm).
    pub max_segment_mm: f64,
}

/// The folded results of a sweep: outcomes, front and surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Every job outcome, in grid order.
    pub outcomes: Vec<JobOutcome>,
    /// Indices (into [`outcomes`](Self::outcomes)) of the Pareto-optimal
    /// feasible entries, ascending.
    pub front: Vec<usize>,
    /// The safe-frequency surface, one entry per distinct physical
    /// design, in first-seen (grid) order.
    pub surface: Vec<SurfacePoint>,
}

/// The objective vector of a feasible, simulated outcome — `[freq_ghz,
/// throughput, recovered_rate, -p99]`, every axis "larger is better" —
/// or `None` for infeasible/unbuilt points, which can never be on the
/// front. Public so incremental front maintainers (the sweep service
/// streams front deltas as jobs finish) score outcomes exactly as
/// [`Analysis::of`] does.
#[must_use]
pub fn pareto_objectives(o: &JobOutcome) -> Option<[f64; 4]> {
    if !o.feasible {
        return None;
    }
    let d = o.digest.as_ref()?;
    Some([
        o.config.system.freq_ghz,
        d.throughput,
        d.recovered_rate(),
        -d.p99, // negate: every axis becomes "larger is better"
    ])
}

/// Strict Pareto dominance over [`pareto_objectives`] vectors: at least
/// as good on every axis, strictly better on one.
#[must_use]
pub fn pareto_dominates(a: &[f64; 4], b: &[f64; 4]) -> bool {
    a.iter().zip(b).all(|(x, y)| x >= y) && a.iter().zip(b).any(|(x, y)| x > y)
}

impl Analysis {
    /// Folds `outcomes` into the front and surface.
    #[must_use]
    pub fn of(outcomes: Vec<JobOutcome>) -> Self {
        let scored: Vec<(usize, [f64; 4])> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| pareto_objectives(o).map(|v| (i, v)))
            .collect();
        let front = scored
            .iter()
            .filter(|(_, v)| !scored.iter().any(|(_, w)| pareto_dominates(w, v)))
            .map(|&(i, _)| i)
            .collect();

        let mut surface: Vec<SurfacePoint> = Vec::new();
        for o in &outcomes {
            if o.build_error.is_some() && o.safe_freq_ghz == 0.0 {
                continue; // not buildable at any clock (e.g. topology error)
            }
            let sys = &o.config.system;
            let key = (
                sys.kind.to_string(),
                sys.ports,
                sys.die_mm.to_bits(),
                sys.width_bits,
                sys.corner.clone(),
            );
            if surface.iter().any(|p| {
                (
                    p.kind.clone(),
                    p.ports,
                    p.die_mm.to_bits(),
                    p.width_bits,
                    p.corner.clone(),
                ) == key
            }) {
                continue;
            }
            surface.push(SurfacePoint {
                kind: sys.kind.to_string(),
                ports: sys.ports,
                die_mm: sys.die_mm,
                width_bits: sys.width_bits,
                corner: sys.corner.clone(),
                safe_freq_ghz: o.safe_freq_ghz,
                max_segment_mm: o.max_segment_mm,
            });
        }
        Self {
            outcomes,
            front,
            surface,
        }
    }

    /// The count of feasible outcomes.
    #[must_use]
    pub fn feasible_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.feasible).count()
    }

    /// Serialises the full analysis (the `BENCH_explore.json` document).
    /// Deterministic given deterministic outcomes; the per-job `wall_ms`
    /// lines are the only fields that vary between runs.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "schema_version".into(),
                JsonValue::Num(f64::from(ANALYSIS_SCHEMA_VERSION)),
            ),
            ("jobs".into(), JsonValue::Num(self.outcomes.len() as f64)),
            (
                "feasible".into(),
                JsonValue::Num(self.feasible_count() as f64),
            ),
            (
                "pareto_front".into(),
                JsonValue::Arr(self.front.iter().map(|&i| self.front_entry(i)).collect()),
            ),
            (
                "safe_frequency_surface".into(),
                JsonValue::Arr(self.surface.iter().map(surface_to_json).collect()),
            ),
            (
                "outcomes".into(),
                JsonValue::Arr(self.outcomes.iter().map(JobOutcome::to_json).collect()),
            ),
        ])
    }

    fn front_entry(&self, i: usize) -> JsonValue {
        let o = &self.outcomes[i];
        let d = o.digest.as_ref().expect("front entries are simulated");
        JsonValue::Obj(vec![
            ("index".into(), JsonValue::Num(i as f64)),
            ("config".into(), o.config.to_json()),
            ("freq_ghz".into(), JsonValue::Num(o.config.system.freq_ghz)),
            ("throughput".into(), JsonValue::Num(d.throughput)),
            ("recovered_rate".into(), JsonValue::Num(d.recovered_rate())),
            ("p99".into(), JsonValue::Num(d.p99)),
            ("max_segment_mm".into(), JsonValue::Num(o.max_segment_mm)),
            ("safe_freq_ghz".into(), JsonValue::Num(o.safe_freq_ghz)),
        ])
    }

    /// Renders the human-readable summary: headline counts, the Pareto
    /// front table, and the safe-frequency surface table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "explored {} jobs: {} feasible, {} on the Pareto front, {} distinct designs\n",
            self.outcomes.len(),
            self.feasible_count(),
            self.front.len(),
            self.surface.len(),
        ));
        out.push('\n');
        out.push_str("Pareto front (freq ↑, throughput ↑, recovered ↑, p99 ↓):\n");
        let rows: Vec<Vec<String>> = self
            .front
            .iter()
            .map(|&i| {
                let o = &self.outcomes[i];
                let d = o.digest.as_ref().expect("front entries are simulated");
                vec![
                    o.config.system.to_string(),
                    o.config.pattern.clone(),
                    format!("{}", o.config.soak),
                    format!("{:.3}", d.throughput),
                    format!("{:.2}", d.recovered_rate()),
                    format!("{:.1}", d.p99),
                    format!("{:.2}", o.max_segment_mm),
                ]
            })
            .collect();
        out.push_str(&table(
            &[
                "design", "pattern", "soak", "thr/cyc", "recov", "p99", "seg mm",
            ],
            &rows,
        ));
        out.push('\n');
        out.push_str("Max-safe-frequency surface:\n");
        let rows: Vec<Vec<String>> = self
            .surface
            .iter()
            .map(|p| {
                vec![
                    p.kind.clone(),
                    p.ports.to_string(),
                    format!("{}", p.die_mm),
                    p.width_bits.to_string(),
                    p.corner.clone(),
                    format!("{:.3}", p.safe_freq_ghz),
                    format!("{:.2}", p.max_segment_mm),
                ]
            })
            .collect();
        out.push_str(&table(
            &[
                "kind", "ports", "die mm", "bits", "corner", "safe GHz", "seg mm",
            ],
            &rows,
        ));
        out
    }
}

fn surface_to_json(p: &SurfacePoint) -> JsonValue {
    JsonValue::Obj(vec![
        ("kind".into(), JsonValue::Str(p.kind.clone())),
        ("ports".into(), JsonValue::Num(p.ports as f64)),
        ("die_mm".into(), JsonValue::Num(p.die_mm)),
        ("width_bits".into(), JsonValue::Num(f64::from(p.width_bits))),
        ("corner".into(), JsonValue::Str(p.corner.clone())),
        ("safe_freq_ghz".into(), JsonValue::Num(p.safe_freq_ghz)),
        ("max_segment_mm".into(), JsonValue::Num(p.max_segment_mm)),
    ])
}

/// Renders a fixed-width text table: left-aligned first column,
/// right-aligned numerics, two-space gutters — matching the bench crate's
/// house style without depending on it (the bench crate depends on us).
fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            if i == 0 {
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
            } else {
                for _ in 0..pad {
                    out.push(' ');
                }
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(
        &mut out,
        &header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
    );
    for row in rows {
        emit(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::job::run_job;

    fn sweep(spec: &str) -> Analysis {
        let outcomes = GridSpec::parse(spec)
            .expect("parses")
            .resolve()
            .iter()
            .map(|j| run_job(j).expect("runs"))
            .collect();
        Analysis::of(outcomes)
    }

    #[test]
    fn front_drops_dominated_points() {
        // Same design at two rates: the higher rate strictly dominates on
        // throughput at equal frequency/recovery unless latency suffers —
        // either way the front is non-empty and contains no dominated pair.
        let analysis = sweep("ports=16;cycles=300;pattern=uniform:0.05,uniform:0.2");
        assert!(!analysis.front.is_empty());
        let vecs: Vec<[f64; 4]> = analysis
            .front
            .iter()
            .map(|&i| pareto_objectives(&analysis.outcomes[i]).expect("front is feasible"))
            .collect();
        for a in &vecs {
            for b in &vecs {
                assert!(!pareto_dominates(a, b), "front contains a dominated point");
            }
        }
    }

    #[test]
    fn infeasible_points_never_reach_the_front() {
        // slow50 silicon at 1 GHz misses timing for the demonstrator die.
        let analysis = sweep("ports=16;cycles=200;corner=nominal,slow50");
        assert!(analysis.outcomes.iter().any(|o| !o.feasible));
        for &i in &analysis.front {
            assert!(analysis.outcomes[i].feasible);
        }
        // Both corners still appear on the surface (they build).
        assert_eq!(analysis.surface.len(), 2);
    }

    #[test]
    fn surface_collapses_workload_axes() {
        // 1 design × 2 patterns × 2 soak levels = 4 jobs, 1 surface point.
        let analysis = sweep("ports=16;cycles=150;pattern=uniform:0.05,neighbor:0.1;soak=0,1");
        assert_eq!(analysis.outcomes.len(), 4);
        assert_eq!(analysis.surface.len(), 1);
    }

    #[test]
    fn json_and_table_render_deterministically() {
        let a = sweep("ports=16;cycles=150");
        let b = sweep("ports=16;cycles=150");
        let strip = |s: String| -> String {
            s.lines()
                .filter(|l| !l.contains("wall_ms"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(a.to_json().to_pretty()),
            strip(b.to_json().to_pretty())
        );
        let text = a.render();
        assert!(text.contains("Pareto front"));
        assert!(text.contains("Max-safe-frequency surface"));
    }
}
