//! A content-addressed on-disk result cache.
//!
//! Each cached [`JobOutcome`] lives in `<dir>/<key>.json`, where `key`
//! is the [`stable_hash`](crate::grid::stable_hash) of the job's
//! canonical config string **salted with the crate version and the
//! simulation report schema versions** — so bumping
//! [`SimReport::SCHEMA_VERSION`] or [`RecoveryReport::SCHEMA_VERSION`]
//! (or releasing a new crate version) invalidates every stale entry
//! without any cleanup pass.
//!
//! Writes go through a uniquely-named temp file + rename, so a crashed
//! run never leaves a torn entry and two executors racing on the same
//! key both land a whole entry; loads verify the embedded config equals
//! the requested one, so even a 64-bit hash collision degrades to a
//! cache miss, never a wrong result — and the mismatch names the first
//! differing field instead of failing silently.
//!
//! The cache also carries the shared-access machinery the sweep service
//! sits on: [`CacheCounters`] (hit/miss/store/eviction telemetry shared
//! by every clone of a handle), an optional entry cap with
//! oldest-first eviction, and an advisory [`CacheClaim`] lock so two
//! executors racing on one job can agree that exactly one simulates
//! while the other waits for the stored result.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use icnoc_sim::{RecoveryReport, SimReport};

use crate::grid::{stable_hash, JobConfig};
use crate::job::JobOutcome;
use crate::json::JsonValue;

/// The on-disk cache handle. Cloning shares the counters (and the cap):
/// every executor holding a clone contributes to one telemetry stream.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    max_entries: Option<usize>,
    counters: Arc<CacheCounters>,
}

/// Shared hit/miss/store/eviction counters, plus the config-mismatch
/// diagnostics collected by [`ResultCache::load`].
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    mismatches: Mutex<Vec<String>>,
}

/// A point-in-time snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads answered from disk.
    pub hits: u64,
    /// Loads that found nothing usable (absent, torn, or mismatched).
    pub misses: u64,
    /// Outcomes written.
    pub stores: u64,
    /// Entries removed to respect the entry cap.
    pub evictions: u64,
}

impl core::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} eviction(s)",
            self.hits, self.misses, self.evictions
        )
    }
}

/// An advisory in-flight claim on one job's cache slot (a `.lock` file
/// created with `create_new`). Dropping the claim releases it. See
/// [`ResultCache::claim`].
#[derive(Debug)]
pub struct CacheClaim {
    path: PathBuf,
}

impl Drop for CacheClaim {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The default cache directory used by `--resume` when no `--cache-dir`
/// is given.
pub const DEFAULT_CACHE_DIR: &str = ".icnoc_explore_cache";

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            max_entries: None,
            counters: Arc::new(CacheCounters::default()),
        })
    }

    /// Caps the cache at `max` entries: each store beyond the cap evicts
    /// the oldest-modified entries (counted in [`CacheStats::evictions`]).
    #[must_use]
    pub fn with_max_entries(mut self, max: usize) -> Self {
        self.max_entries = Some(max.max(1));
        self
    }

    /// The directory this cache stores entries in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The versioned cache key of `config`.
    #[must_use]
    pub fn key(config: &JobConfig) -> u64 {
        let salted = format!("{}\n{}", config.canonical(), version_salt());
        stable_hash(salted.as_bytes())
    }

    /// The path an entry for `config` would occupy.
    #[must_use]
    pub fn entry_path(&self, config: &JobConfig) -> PathBuf {
        self.dir.join(format!("{:016x}.json", Self::key(config)))
    }

    /// A snapshot of the shared counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drains the config-mismatch diagnostics recorded by [`load`]
    /// (entries whose embedded config differed from the requested one —
    /// each message names the first mismatched field).
    ///
    /// [`load`]: Self::load
    #[must_use]
    pub fn take_mismatches(&self) -> Vec<String> {
        std::mem::take(&mut *self.counters.mismatches.lock().expect("mismatch lock"))
    }

    /// Loads the cached outcome for `config`, or `None` on a miss (no
    /// entry, unreadable entry, or an entry whose embedded config does
    /// not match — all three degrade to a re-run, but a config mismatch
    /// additionally records which field differed; see
    /// [`take_mismatches`](Self::take_mismatches)).
    #[must_use]
    pub fn load(&self, config: &JobConfig) -> Option<JobOutcome> {
        let found = self.peek(config);
        match &found {
            Some(outcome) if outcome.config == *config => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                found
            }
            Some(outcome) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let detail = config_mismatch(config, &outcome.config);
                self.counters
                    .mismatches
                    .lock()
                    .expect("mismatch lock")
                    .push(format!(
                        "cache entry {:016x}.json ignored: {detail}; re-running",
                        Self::key(config)
                    ));
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads an entry without touching the counters (the polling inside
    /// [`wait_for`](Self::wait_for) must not inflate the miss count).
    fn peek(&self, config: &JobConfig) -> Option<JobOutcome> {
        let text = std::fs::read_to_string(self.entry_path(config)).ok()?;
        JobOutcome::from_json(&JsonValue::parse(&text).ok()?).ok()
    }

    /// Stores `outcome` under its config's key, atomically (uniquely
    /// named temp file + rename, so concurrent stores of the same key
    /// both land whole — last rename wins with identical contents).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, outcome: &JobOutcome) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.entry_path(&outcome.config);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}-{}.tmp",
            Self::key(&outcome.config),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, outcome.to_json().to_pretty())?;
        std::fs::rename(&tmp, &path)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = self.max_entries {
            self.evict_beyond(max, &path);
        }
        Ok(())
    }

    /// Removes oldest-modified entries until at most `max` remain. The
    /// just-written `keep` path is never evicted, so a store always
    /// leaves its own entry readable.
    fn evict_beyond(&self, max: usize, keep: &Path) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut aged: Vec<(std::time::SystemTime, PathBuf)> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json") && p != keep)
            .filter_map(|p| {
                let modified = std::fs::metadata(&p).and_then(|m| m.modified()).ok()?;
                Some((modified, p))
            })
            .collect();
        // +1 for the protected `keep` entry itself.
        let total = aged.len() + 1;
        if total <= max {
            return;
        }
        aged.sort(); // oldest mtime first; path breaks ties deterministically
        for (_, path) in aged.into_iter().take(total - max) {
            if std::fs::remove_file(&path).is_ok() {
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Tries to claim the in-flight slot for `config`: returns a
    /// [`CacheClaim`] when this caller should compute the job, or `None`
    /// when another executor already holds the claim (then
    /// [`wait_for`](Self::wait_for) the winner's stored result). The
    /// claim is advisory — `load`/`store` never require one — and is
    /// released on drop, including on panic unwind.
    #[must_use]
    pub fn claim(&self, config: &JobConfig) -> Option<CacheClaim> {
        let path = self.entry_path(config).with_extension("lock");
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(_) => Some(CacheClaim { path }),
            Err(_) => None,
        }
    }

    /// Polls [`load`](Self::load) until an entry for `config` appears or
    /// `timeout` elapses (counters see a single hit or miss, not every
    /// poll). The claim-loser's half of the [`claim`](Self::claim)
    /// protocol; a timeout (claim holder crashed) degrades to a miss, so
    /// the caller re-runs rather than hanging.
    #[must_use]
    pub fn wait_for(&self, config: &JobConfig, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(outcome) = self.peek(config) {
                if outcome.config == *config {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(outcome);
                }
            }
            if Instant::now() >= deadline {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Names the first field where `want` and `got` differ (both canonical
/// strings are `;`-separated `field=value` lists in the same fixed
/// order, so a positional walk finds the culprit).
fn config_mismatch(want: &JobConfig, got: &JobConfig) -> String {
    let want_c = want.canonical();
    let got_c = got.canonical();
    for (w, g) in want_c.split(';').zip(got_c.split(';')) {
        if w != g {
            let field = w.split('=').next().unwrap_or(w);
            let wanted = w.split_once('=').map_or(w, |(_, v)| v);
            let found = g.split_once('=').map_or(g, |(_, v)| v);
            return format!(
                "config field {field:?} is {found:?} (cached) vs {wanted:?} (requested)"
            );
        }
    }
    "configs differ beyond the shared fields".to_owned()
}

/// The cache-invalidation salt: crate version plus every report schema
/// version an outcome embeds. The `ICNOC_EXPLORE_SALT` environment
/// variable, when set, is appended verbatim — CI uses it to prove that a
/// salt change (as a schema bump would cause) re-executes a warm sweep
/// exactly once.
fn version_salt() -> String {
    let mut salt = format!(
        "crate={};sim_schema={};recovery_schema={}",
        env!("CARGO_PKG_VERSION"),
        SimReport::SCHEMA_VERSION,
        RecoveryReport::SCHEMA_VERSION,
    );
    if let Ok(extra) = std::env::var("ICNOC_EXPLORE_SALT") {
        salt.push_str(";extra=");
        salt.push_str(&extra);
    }
    salt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::job::run_job;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icnoc-explore-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).expect("opens");
        let job = &GridSpec::parse("ports=16;cycles=120")
            .expect("parses")
            .resolve()[0];
        assert!(cache.load(job).is_none(), "cold cache misses");
        let outcome = run_job(job).expect("runs");
        cache.store(&outcome).expect("stores");
        assert_eq!(cache.load(job), Some(outcome));
        // A different config is a different key — still a miss.
        let other = &GridSpec::parse("ports=16;cycles=121")
            .expect("parses")
            .resolve()[0];
        assert!(cache.load(other).is_none());
        // The counters saw all of it: 1 hit, 2 misses, 1 store.
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                stores: 1,
                evictions: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_degrade_to_misses() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).expect("opens");
        let job = &GridSpec::parse("ports=16;cycles=130")
            .expect("parses")
            .resolve()[0];
        // Corrupt entry: unparseable JSON at the right path.
        std::fs::write(cache.entry_path(job), "{ not json").expect("writes");
        assert!(cache.load(job).is_none());
        assert!(cache.take_mismatches().is_empty(), "torn != mismatched");
        // Mismatched entry: a valid outcome for a *different* config
        // planted at this config's path (simulated hash collision). The
        // miss must name the differing field.
        let other = &GridSpec::parse("ports=16;cycles=131")
            .expect("parses")
            .resolve()[0];
        let outcome = run_job(other).expect("runs");
        std::fs::write(cache.entry_path(job), outcome.to_json().to_pretty()).expect("writes");
        assert!(cache.load(job).is_none());
        let mismatches = cache.take_mismatches();
        assert_eq!(mismatches.len(), 1);
        assert!(mismatches[0].contains("\"cycles\""), "{}", mismatches[0]);
        assert!(mismatches[0].contains("131"), "{}", mismatches[0]);
        assert!(mismatches[0].contains("130"), "{}", mismatches[0]);
        // Draining is destructive: a second take sees nothing.
        assert!(cache.take_mismatches().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_cap_evicts_oldest_first_and_counts_it() {
        let dir = temp_dir("evict");
        let cache = ResultCache::open(&dir).expect("opens").with_max_entries(2);
        let jobs = GridSpec::parse("ports=16;cycles=100,101,102")
            .expect("parses")
            .resolve();
        for (i, job) in jobs.iter().enumerate() {
            let outcome = run_job(job).expect("runs");
            cache.store(&outcome).expect("stores");
            // Distinct mtimes so "oldest" is well defined even on coarse
            // filesystem clocks.
            if i + 1 < jobs.len() {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        assert_eq!(cache.stats().evictions, 1);
        // The first-stored entry went; the newer two survive.
        assert!(cache.load(&jobs[0]).is_none());
        assert!(cache.load(&jobs[1]).is_some());
        assert!(cache.load(&jobs[2]).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_are_exclusive_and_released_on_drop() {
        let dir = temp_dir("claim");
        let cache = ResultCache::open(&dir).expect("opens");
        let job = &GridSpec::parse("ports=16;cycles=140")
            .expect("parses")
            .resolve()[0];
        let first = cache.claim(job).expect("first claim wins");
        assert!(cache.claim(job).is_none(), "second claim loses");
        drop(first);
        let again = cache.claim(job);
        assert!(again.is_some(), "released claims can be retaken");
        drop(again);
        // wait_for times out (nothing stored) and degrades to a miss.
        assert!(cache.wait_for(job, Duration::from_millis(10)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_salted_with_schema_versions() {
        let job = &GridSpec::parse("").expect("parses").resolve()[0];
        // The key differs from the raw config hash precisely because of
        // the version salt.
        assert_ne!(ResultCache::key(job), job.stable_hash());
    }

    #[test]
    fn salt_embeds_the_current_schema_versions() {
        // Schema bumps (most recently for the report's perf section)
        // must flow into the salt so every pre-bump cache entry misses.
        let salt = version_salt();
        assert!(
            salt.contains(&format!("sim_schema={}", SimReport::SCHEMA_VERSION)),
            "{salt}"
        );
        assert!(salt.contains("sim_schema=5"), "{salt}");
        assert!(
            salt.contains(&format!(
                "recovery_schema={}",
                RecoveryReport::SCHEMA_VERSION
            )),
            "{salt}"
        );
    }
}
