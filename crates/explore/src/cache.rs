//! A content-addressed on-disk result cache.
//!
//! Each cached [`JobOutcome`] lives in `<dir>/<key>.json`, where `key`
//! is the [`stable_hash`](crate::grid::stable_hash) of the job's
//! canonical config string **salted with the crate version and the
//! simulation report schema versions** — so bumping
//! [`SimReport::SCHEMA_VERSION`] or [`RecoveryReport::SCHEMA_VERSION`]
//! (or releasing a new crate version) invalidates every stale entry
//! without any cleanup pass.
//!
//! Writes go through a temp file + rename so a crashed run never leaves
//! a torn entry; loads verify the embedded config equals the requested
//! one, so even a 64-bit hash collision degrades to a cache miss, never
//! a wrong result.

use std::io;
use std::path::{Path, PathBuf};

use icnoc_sim::{RecoveryReport, SimReport};

use crate::grid::{stable_hash, JobConfig};
use crate::job::JobOutcome;
use crate::json::JsonValue;

/// The on-disk cache handle.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

/// The default cache directory used by `--resume` when no `--cache-dir`
/// is given.
pub const DEFAULT_CACHE_DIR: &str = ".icnoc_explore_cache";

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The versioned cache key of `config`.
    #[must_use]
    pub fn key(config: &JobConfig) -> u64 {
        let salted = format!("{}\n{}", config.canonical(), version_salt());
        stable_hash(salted.as_bytes())
    }

    /// The path an entry for `config` would occupy.
    #[must_use]
    pub fn entry_path(&self, config: &JobConfig) -> PathBuf {
        self.dir.join(format!("{:016x}.json", Self::key(config)))
    }

    /// Loads the cached outcome for `config`, or `None` on a miss (no
    /// entry, unreadable entry, or an entry whose embedded config does
    /// not match — all three degrade identically).
    #[must_use]
    pub fn load(&self, config: &JobConfig) -> Option<JobOutcome> {
        let text = std::fs::read_to_string(self.entry_path(config)).ok()?;
        let outcome = JobOutcome::from_json(&JsonValue::parse(&text).ok()?).ok()?;
        (outcome.config == *config).then_some(outcome)
    }

    /// Stores `outcome` under its config's key, atomically (temp file +
    /// rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, outcome: &JobOutcome) -> io::Result<()> {
        let path = self.entry_path(&outcome.config);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, outcome.to_json().to_pretty())?;
        std::fs::rename(&tmp, &path)
    }
}

/// The cache-invalidation salt: crate version plus every report schema
/// version an outcome embeds. The `ICNOC_EXPLORE_SALT` environment
/// variable, when set, is appended verbatim — CI uses it to prove that a
/// salt change (as a schema bump would cause) re-executes a warm sweep
/// exactly once.
fn version_salt() -> String {
    let mut salt = format!(
        "crate={};sim_schema={};recovery_schema={}",
        env!("CARGO_PKG_VERSION"),
        SimReport::SCHEMA_VERSION,
        RecoveryReport::SCHEMA_VERSION,
    );
    if let Ok(extra) = std::env::var("ICNOC_EXPLORE_SALT") {
        salt.push_str(";extra=");
        salt.push_str(&extra);
    }
    salt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::job::run_job;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icnoc-explore-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).expect("opens");
        let job = &GridSpec::parse("ports=16;cycles=120")
            .expect("parses")
            .resolve()[0];
        assert!(cache.load(job).is_none(), "cold cache misses");
        let outcome = run_job(job).expect("runs");
        cache.store(&outcome).expect("stores");
        assert_eq!(cache.load(job), Some(outcome));
        // A different config is a different key — still a miss.
        let other = &GridSpec::parse("ports=16;cycles=121")
            .expect("parses")
            .resolve()[0];
        assert!(cache.load(other).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_degrade_to_misses() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir).expect("opens");
        let job = &GridSpec::parse("ports=16;cycles=130")
            .expect("parses")
            .resolve()[0];
        // Corrupt entry: unparseable JSON at the right path.
        std::fs::write(cache.entry_path(job), "{ not json").expect("writes");
        assert!(cache.load(job).is_none());
        // Mismatched entry: a valid outcome for a *different* config
        // planted at this config's path (simulated hash collision).
        let other = &GridSpec::parse("ports=16;cycles=131")
            .expect("parses")
            .resolve()[0];
        let outcome = run_job(other).expect("runs");
        std::fs::write(cache.entry_path(job), outcome.to_json().to_pretty()).expect("writes");
        assert!(cache.load(job).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_salted_with_schema_versions() {
        let job = &GridSpec::parse("").expect("parses").resolve()[0];
        // The key differs from the raw config hash precisely because of
        // the version salt.
        assert_ne!(ResultCache::key(job), job.stable_hash());
    }

    #[test]
    fn salt_embeds_the_current_schema_versions() {
        // Schema bumps (most recently for the report's perf section)
        // must flow into the salt so every pre-bump cache entry misses.
        let salt = version_salt();
        assert!(
            salt.contains(&format!("sim_schema={}", SimReport::SCHEMA_VERSION)),
            "{salt}"
        );
        assert!(salt.contains("sim_schema=4"), "{salt}");
        assert!(
            salt.contains(&format!(
                "recovery_schema={}",
                RecoveryReport::SCHEMA_VERSION
            )),
            "{salt}"
        );
    }
}
