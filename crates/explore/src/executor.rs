//! A deterministic work-stealing executor over `std::thread`.
//!
//! Jobs are identified by their **index** in the resolved job list. Each
//! worker owns a deque pre-loaded with a contiguous shard of indices; it
//! pops work from the front of its own deque and, when empty, steals from
//! the *back* of the other workers' deques. Results are returned in a
//! vector slot per index, so the output is a pure function of the job
//! list — never of the worker count, scheduling order or steal pattern.
//! (Per-job randomness is seeded from the job config's stable hash for
//! the same reason; see [`crate::JobConfig::stable_hash`].)
//!
//! Each job runs under [`std::panic::catch_unwind`]: a panicking job
//! becomes an `Err(message)` in its slot and the remaining jobs keep
//! running, so one diverged simulation cannot take down a sweep.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs jobs `0..total` across `workers` threads and returns one result
/// slot per index, in index order. `Err` carries the panic message of a
/// job that panicked.
///
/// `progress(done, total)` is invoked after every completed job, from the
/// completing worker's thread (`done` counts all workers' completions).
///
/// `workers` is clamped to `1..=total` (a zero-job run returns
/// immediately; a zero-worker request means one worker).
pub fn run_indexed<T, F, P>(
    total: usize,
    workers: usize,
    job: F,
    progress: P,
) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize, usize) + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);

    // Contiguous shards: worker w owns indices [w*chunk, ...). The last
    // worker's shard absorbs the remainder.
    let chunk = total.div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(total);
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let done = AtomicUsize::new(0);

    let mut per_worker: Vec<Vec<(usize, Result<T, String>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let job = &job;
                let progress = &progress;
                let done = &done;
                s.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(idx) = next_index(queues, w) {
                        let result = run_isolated(|| job(idx));
                        out.push((idx, result));
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        progress(n, total);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker threads do not panic"))
            .collect()
    });

    // Scatter into index slots. Every index was queued exactly once and
    // every queued index was executed, so all slots fill.
    let mut slots: Vec<Option<Result<T, String>>> = (0..total).map(|_| None).collect();
    for results in &mut per_worker {
        for (idx, result) in results.drain(..) {
            debug_assert!(slots[idx].is_none(), "job {idx} executed twice");
            slots[idx] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index executed"))
        .collect()
}

/// Pops the next index for worker `w`: front of its own deque, else a
/// steal from the back of the first non-empty victim (scanning `w+1`,
/// `w+2`, … cyclically). Returns `None` when every deque is empty.
fn next_index(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(idx) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(idx);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(idx) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(idx);
        }
    }
    None
}

/// Runs `job` under [`catch_unwind`], turning a panic into an
/// `Err(message)` instead of unwinding the caller. This is the panic
/// isolation every sweep job runs under; it is public so external job
/// submitters (the `icnoc serve` registry executes client-submitted jobs
/// on its own worker pool) get exactly the same containment.
pub fn run_isolated<T>(job: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| panic_message(payload.as_ref()))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_index_order_for_any_worker_count() {
        let serial = run_indexed(37, 1, |i| i * i, |_, _| {});
        for workers in [2, 3, 8, 64] {
            let parallel = run_indexed(37, workers, |i| i * i, |_, _| {});
            assert_eq!(parallel, serial, "workers={workers}");
        }
        for (i, r) in serial.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i * i));
        }
    }

    #[test]
    fn panics_are_isolated_to_their_slot() {
        let results = run_indexed(
            8,
            4,
            |i| {
                assert!(i != 3 && i != 5, "job {i} diverged");
                i
            },
            |_, _| {},
        );
        for (i, r) in results.iter().enumerate() {
            if i == 3 || i == 5 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("diverged"), "got {msg:?}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn progress_counts_every_completion_exactly_once() {
        let max_seen = AtomicUsize::new(0);
        let calls = AtomicUsize::new(0);
        run_indexed(
            25,
            5,
            |i| i,
            |done, total| {
                assert_eq!(total, 25);
                calls.fetch_add(1, Ordering::Relaxed);
                max_seen.fetch_max(done, Ordering::Relaxed);
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 25);
        assert_eq!(max_seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn degenerate_shapes_work() {
        assert!(run_indexed(0, 4, |i| i, |_, _| {}).is_empty());
        // Zero workers clamps to one; more workers than jobs clamps down.
        assert_eq!(run_indexed(3, 0, |i| i, |_, _| {}).len(), 3);
        assert_eq!(run_indexed(2, 16, |i| i, |_, _| {}).len(), 2);
    }

    #[test]
    fn run_isolated_contains_panics_and_passes_values() {
        assert_eq!(run_isolated(|| 7), Ok(7));
        let err = run_isolated(|| -> i32 { panic!("boom {}", 42) }).unwrap_err();
        assert!(err.contains("boom 42"), "{err}");
    }

    #[test]
    fn uneven_job_costs_still_complete_via_stealing() {
        // Worker 0's shard is all the slow jobs; the others must steal.
        let results = run_indexed(
            16,
            4,
            |i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                i
            },
            |_, _| {},
        );
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(Result::is_ok));
    }
}
