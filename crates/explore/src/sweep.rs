//! The top-level sweep driver: grid → cache prescan → executor → cache
//! fill → analysis.
//!
//! [`run_sweep`] is the one-shot batch entry point the CLI uses.
//! [`run_sweep_with`] is the incremental seam underneath it: an observer
//! sees every outcome (cached or executed) the moment its slot fills,
//! which is what lets a resident service stream per-job rows to clients
//! while the sweep is still running instead of waiting for the fold.

use crate::cache::{CacheStats, ResultCache};
use crate::executor::run_indexed;
use crate::grid::GridSpec;
use crate::job::{run_job_with_options, JobOutcome};
use crate::pareto::Analysis;
use icnoc_sim::SimKernel;

/// How a sweep should run.
#[derive(Debug, Default)]
pub struct SweepOptions {
    /// Worker threads (`0` = one per job, clamped by the executor).
    pub jobs: usize,
    /// Result cache, if caching is enabled.
    pub cache: Option<ResultCache>,
    /// Stepping kernel each job simulates with. Purely an execution
    /// option: outcomes (and cache keys) are kernel-invariant.
    pub kernel: SimKernel,
    /// Attach the kernel profiler to every executed job, adding a `perf`
    /// telemetry object to its sweep-output JSON. Also an execution
    /// option: the telemetry is stripped before caching, so cache
    /// contents stay profiling-invariant.
    pub profile: bool,
    /// Speculate-and-replay window bound for parallel-kernel jobs
    /// (`--speculate` / `ICNOC_SPECULATE`). Another execution option:
    /// committed speculative state is bit-identical, so outcomes and
    /// cache keys are speculation-invariant.
    pub speculate: Option<u32>,
}

/// Where a sweep's outcomes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Total jobs in the grid.
    pub total: usize,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Jobs answered from the cache.
    pub cached: usize,
    /// Executed jobs that panicked or failed to interpret (their slots
    /// carry a synthetic infeasible outcome with the message).
    pub failed: usize,
    /// The cache's counter snapshot after the sweep (all zeros when the
    /// sweep ran uncached).
    pub cache: CacheStats,
}

/// One observation from a running sweep, delivered to the
/// [`run_sweep_with`] observer from whichever thread produced it.
#[derive(Debug)]
pub enum SweepEvent<'a> {
    /// A slot filled: job `index` (grid order) resolved to `outcome`,
    /// either from the cache (`cached`) or by execution. Executed
    /// outcomes are observed *before* the final fold — this is the
    /// streaming seam — except synthetic failure outcomes for panicked
    /// jobs, which are observed during the fold.
    Result {
        /// Index into the resolved grid.
        index: usize,
        /// The outcome that filled the slot.
        outcome: &'a JobOutcome,
        /// Whether the cache (not the executor) answered it.
        cached: bool,
    },
    /// A progress tick: `done` of `total` slots are filled.
    Progress {
        /// Slots filled so far (cache hits count all at once, up front).
        done: usize,
        /// Total jobs in the grid.
        total: usize,
    },
}

/// Runs `grid` and folds the outcomes.
///
/// Jobs found in the cache are not executed; fresh results are written
/// back. `progress(done, total)` fires once after the cache prescan
/// (covering all hits at once) and then per completed job, from worker
/// threads.
///
/// The outcome vector — and therefore the entire [`Analysis`] — is in
/// grid order and bit-identical for any worker count: job seeds come
/// from config hashes, results land in index slots, and the fold is
/// sequential.
pub fn run_sweep<P>(grid: &GridSpec, opts: &SweepOptions, progress: P) -> (Analysis, SweepStats)
where
    P: Fn(usize, usize) + Sync,
{
    run_sweep_with(grid, opts, |event| {
        if let SweepEvent::Progress { done, total } = event {
            progress(done, total);
        }
    })
}

/// Like [`run_sweep`], but every event — per-job results as they land,
/// progress ticks — flows through `observe`, from worker threads, while
/// the sweep runs. This is the incremental seam resident services build
/// on: results stream out job by job instead of arriving only in the
/// folded [`Analysis`].
pub fn run_sweep_with<O>(grid: &GridSpec, opts: &SweepOptions, observe: O) -> (Analysis, SweepStats)
where
    O: Fn(SweepEvent<'_>) + Sync,
{
    let jobs = grid.resolve();
    let total = jobs.len();
    let mut slots: Vec<Option<JobOutcome>> = jobs
        .iter()
        .map(|j| opts.cache.as_ref().and_then(|c| c.load(j)))
        .collect();
    let cached = slots.iter().filter(|s| s.is_some()).count();
    for (index, slot) in slots.iter().enumerate() {
        if let Some(outcome) = slot {
            observe(SweepEvent::Result {
                index,
                outcome,
                cached: true,
            });
        }
    }
    observe(SweepEvent::Progress {
        done: cached,
        total,
    });

    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
    let results = run_indexed(
        pending.len(),
        opts.jobs,
        |k| {
            let index = pending[k];
            let outcome =
                run_job_with_options(&jobs[index], opts.kernel, opts.profile, opts.speculate)
                    .map_err(|e| e.to_string())?;
            if let Some(cache) = &opts.cache {
                // A failed store degrades to "uncached", not an error:
                // the sweep's results do not depend on the cache. The
                // nondeterministic perf telemetry never enters the
                // cache, keeping stored bytes profiling-invariant.
                let stored = JobOutcome {
                    perf: None,
                    ..outcome.clone()
                };
                let _ = cache.store(&stored);
            }
            observe(SweepEvent::Result {
                index,
                outcome: &outcome,
                cached: false,
            });
            Ok(outcome)
        },
        |done, _| {
            observe(SweepEvent::Progress {
                done: cached + done,
                total,
            });
        },
    );

    let mut executed = 0usize;
    let mut failed = 0usize;
    for (k, result) in results.into_iter().enumerate() {
        let i = pending[k];
        executed += 1;
        let outcome = match result {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(msg)) | Err(msg) => {
                failed += 1;
                let outcome = JobOutcome::failed(&jobs[i], &msg);
                observe(SweepEvent::Result {
                    index: i,
                    outcome: &outcome,
                    cached: false,
                });
                outcome
            }
        };
        slots[i] = Some(outcome);
    }

    let outcomes = slots
        .into_iter()
        .map(|s| s.expect("every slot filled by cache or executor"))
        .collect();
    (
        Analysis::of(outcomes),
        SweepStats {
            total,
            executed,
            cached,
            failed,
            cache: opts
                .cache
                .as_ref()
                .map(ResultCache::stats)
                .unwrap_or_default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn strip_wall(text: &str) -> String {
        text.lines()
            .filter(|l| !l.contains("wall_ms"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn worker_count_does_not_change_the_analysis() {
        let grid = GridSpec::parse("ports=16;cycles=200;freq=0.9,1.0;soak=0,1").expect("parses");
        let (serial, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 1,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        let (parallel, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 8,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        assert_eq!(
            strip_wall(&serial.to_json().to_pretty()),
            strip_wall(&parallel.to_json().to_pretty()),
        );
    }

    #[test]
    fn parallel_kernel_does_not_change_the_analysis() {
        // The kernel is an execution option: a sweep simulated with the
        // parallel subtree-sharded kernel (2 workers per job) must emit
        // the same analysis, byte for byte, as the event kernel.
        let grid = GridSpec::parse("ports=16;cycles=200;freq=0.9,1.0;soak=0,1").expect("parses");
        let (event, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 1,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        let (parallel, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: None,
                kernel: SimKernel::Parallel { workers: 2 },
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        assert_eq!(
            strip_wall(&event.to_json().to_pretty()),
            strip_wall(&parallel.to_json().to_pretty()),
        );
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let dir =
            std::env::temp_dir().join(format!("icnoc-explore-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = GridSpec::parse("ports=16;cycles=150;freq=0.9,1.0").expect("parses");
        let open = || ResultCache::open(&dir).expect("opens");
        let (first, stats1) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: Some(open()),
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        assert_eq!(stats1.executed, 2);
        assert_eq!(stats1.cached, 0);
        // Cold run: the prescan missed twice, then stored twice.
        assert_eq!(stats1.cache.misses, 2);
        assert_eq!(stats1.cache.hits, 0);
        assert_eq!(stats1.cache.stores, 2);
        let (second, stats2) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: Some(open()),
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        assert_eq!(stats2.executed, 0);
        assert_eq!(stats2.cached, 2);
        assert_eq!(stats2.cache.hits, 2);
        assert_eq!(stats2.cache.misses, 0);
        // Cached results are the executed results, wall clock and all.
        assert_eq!(first.to_json().to_pretty(), second.to_json().to_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observer_sees_every_result_exactly_once_as_it_lands() {
        let grid = GridSpec::parse("ports=16;cycles=120;freq=0.9,1.0;soak=0,1").expect("parses");
        let seen: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let (analysis, _) = run_sweep_with(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |event| {
                if let SweepEvent::Result {
                    index,
                    outcome,
                    cached,
                } = event
                {
                    assert_eq!(outcome.hash, outcome.config.stable_hash());
                    seen.lock().expect("lock").push((index, cached));
                }
            },
        );
        let mut seen = seen.into_inner().expect("lock");
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, false), (1, false), (2, false), (3, false)],
            "each of the 4 jobs observed exactly once, all executed"
        );
        assert_eq!(analysis.outcomes.len(), 4);
    }

    #[test]
    fn observer_distinguishes_cached_from_executed_results() {
        let dir = std::env::temp_dir().join(format!(
            "icnoc-explore-sweep-observe-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Warm one of the two jobs, then watch the second run observe one
        // cached and one executed result.
        let warm = GridSpec::parse("ports=16;cycles=110;freq=0.9").expect("parses");
        let open = || ResultCache::open(&dir).expect("opens");
        let _ = run_sweep(
            &warm,
            &SweepOptions {
                jobs: 1,
                cache: Some(open()),
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        let grid = GridSpec::parse("ports=16;cycles=110;freq=0.9,1.0").expect("parses");
        let seen: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let (_, stats) = run_sweep_with(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: Some(open()),
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |event| {
                if let SweepEvent::Result { index, cached, .. } = event {
                    seen.lock().expect("lock").push((index, cached));
                }
            },
        );
        let mut seen = seen.into_inner().expect("lock");
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, true), (1, false)]);
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.executed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiling_is_additive_telemetry_only() {
        // A profiled sweep must produce the same analysis as an
        // unprofiled one once the nondeterministic lines (wall_ms and
        // the perf object) are stripped — and the perf object must
        // actually appear on buildable points.
        let strip_perf = |text: &str| -> String {
            // The perf object spans several pretty-printed lines; drop
            // everything from its opening key to its closing brace.
            let mut out = Vec::new();
            let mut in_perf = false;
            for line in text.lines() {
                if line.trim_start().starts_with("\"perf\":") {
                    in_perf = true;
                    continue;
                }
                if in_perf {
                    if line.trim() == "}," || line.trim() == "}" {
                        in_perf = false;
                    }
                    continue;
                }
                if !line.contains("wall_ms") {
                    out.push(line);
                }
            }
            out.join("\n")
        };
        let grid = GridSpec::parse("ports=16;cycles=150;freq=0.9,1.0").expect("parses");
        let (plain, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |_, _| {},
        );
        let (profiled, _) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: None,
                kernel: SimKernel::default(),
                profile: true,
                speculate: None,
            },
            |_, _| {},
        );
        let profiled_text = profiled.to_json().to_pretty();
        assert!(
            profiled_text.contains("\"perf\":"),
            "profiled sweeps must carry perf telemetry"
        );
        assert!(
            profiled_text.contains("\"epochs\":"),
            "perf telemetry must include epoch counts"
        );
        assert_eq!(
            strip_perf(&plain.to_json().to_pretty()),
            strip_perf(&profiled_text),
            "profiling must not change the analysis"
        );
    }

    #[test]
    fn progress_reaches_total_and_failures_become_outcomes() {
        let max_done = AtomicUsize::new(0);
        let grid = GridSpec::parse("ports=16;cycles=100;freq=0.9,3.0").expect("parses");
        let (analysis, stats) = run_sweep(
            &grid,
            &SweepOptions {
                jobs: 2,
                cache: None,
                kernel: SimKernel::default(),
                profile: false,
                speculate: None,
            },
            |done, total| {
                assert_eq!(total, 2);
                max_done.fetch_max(done, Ordering::Relaxed);
            },
        );
        assert_eq!(max_done.load(Ordering::Relaxed), 2);
        assert_eq!(stats.total, 2);
        // 3 GHz fails to *build* (a recorded outcome, not a failure).
        assert_eq!(stats.failed, 0);
        assert_eq!(analysis.outcomes.len(), 2);
        assert!(analysis.outcomes[1].build_error.is_some());
    }
}
