//! Declarative parameter grids and their resolution into jobs.
//!
//! A grid spec is a `;`-separated list of axes, each `name=values`:
//!
//! ```text
//! kind=binary,quad;ports=16,64;freq=0.8..1.2/5;corner=nominal,slow30
//! ```
//!
//! Values are `,`-separated lists; numeric axes also accept `lo..hi/n`
//! linspace ranges. Axis separators are `;` (not `,`) so that traffic
//! pattern specs — which use `:` internally, e.g. `hotspot:0.3:0:0.5` —
//! can appear verbatim as list values. Missing axes default to the
//! paper's demonstrator operating point.
//!
//! Resolution walks the axes in a **fixed order** (kind, ports, die,
//! width, freq, corner, clock, pattern, cycles, soak), so the job list —
//! and with it every per-job seed — is identical however many workers
//! later execute it.

use icnoc::SystemConfig;
use icnoc_sim::TrafficPattern;
use icnoc_topology::{PortId, TreeKind};
use icnoc_units::{Gigahertz, Picoseconds};

use crate::json::JsonValue;

/// Every axis name the grid grammar accepts, in documentation order.
/// Unknown-axis errors name this full set (the same style the fault-spec
/// parser uses for unknown fault keys), so the message is always the
/// complete grammar, not whatever subset the error string last mentioned.
pub const AXIS_NAMES: &[&str] = &[
    "kind", "ports", "die", "width", "freq", "thalf", "corner", "clock", "pattern", "cycles",
    "soak", "seed",
];

/// A grid-spec or value parse failure, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError(pub String);

impl core::fmt::Display for GridError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for GridError {}

/// A resolved parameter grid: one value list per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Tree kinds to sweep.
    pub kinds: Vec<TreeKind>,
    /// Port counts to sweep.
    pub ports: Vec<usize>,
    /// Die edges (mm, square) to sweep.
    pub die_mm: Vec<f64>,
    /// Data-path widths (bits) to sweep.
    pub width_bits: Vec<u32>,
    /// Clock frequencies (GHz) to sweep.
    pub freq_ghz: Vec<f64>,
    /// Process-corner labels to sweep
    /// (see [`icnoc_timing::ProcessVariation::standard_corners`]).
    pub corners: Vec<String>,
    /// Clock-distribution backend labels to sweep
    /// (see [`icnoc_clock::ClockBackend`]).
    pub clocks: Vec<String>,
    /// Traffic-pattern specs (kept as text; parsed per job).
    pub patterns: Vec<String>,
    /// Simulated cycle counts to sweep.
    pub cycles: Vec<u64>,
    /// Fault-soak scale factors to sweep (`0` = no fault injection).
    pub soak: Vec<f64>,
    /// Master seed mixed into every job's simulation seed.
    pub seed: u64,
}

impl Default for GridSpec {
    /// The demonstrator operating point as a 1-job grid.
    fn default() -> Self {
        Self {
            kinds: vec![TreeKind::Binary],
            ports: vec![64],
            die_mm: vec![10.0],
            width_bits: vec![32],
            freq_ghz: vec![1.0],
            corners: vec!["nominal".to_owned()],
            clocks: vec![icnoc_clock::ClockBackend::Forwarded.label().to_owned()],
            patterns: vec!["uniform:0.1".to_owned()],
            cycles: vec![2_000],
            soak: vec![0.0],
            seed: 42,
        }
    }
}

impl GridSpec {
    /// Parses a grid spec string (see the module docs for the grammar).
    /// An empty spec yields the demonstrator point.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] for unknown axis names, malformed numbers
    /// or ranges, empty axes, or a `thalf`/`freq` clash.
    pub fn parse(spec: &str) -> Result<Self, GridError> {
        let mut grid = Self::default();
        let mut saw_freq = false;
        let mut saw_thalf = false;
        for axis in spec.split(';') {
            let axis = axis.trim();
            if axis.is_empty() {
                continue;
            }
            let (name, values) = axis
                .split_once('=')
                .ok_or_else(|| GridError(format!("axis {axis:?} must be name=values")))?;
            let (name, values) = (name.trim(), values.trim());
            if values.is_empty() {
                return Err(GridError(format!("axis {name:?} has no values")));
            }
            match name {
                "kind" => {
                    grid.kinds = split_list(values)
                        .map(|v| match v {
                            "binary" => Ok(TreeKind::Binary),
                            "quad" => Ok(TreeKind::Quad),
                            other => Err(GridError(format!(
                                "kind must be binary or quad, got {other:?}"
                            ))),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "ports" => grid.ports = parse_ints(name, values)?,
                "die" => grid.die_mm = parse_floats(name, values)?,
                "width" => {
                    grid.width_bits = parse_ints::<u64>(name, values)?
                        .into_iter()
                        .map(|w| w as u32)
                        .collect();
                }
                "freq" => {
                    saw_freq = true;
                    grid.freq_ghz = parse_floats(name, values)?;
                }
                "thalf" => {
                    // A half-period axis (ps) is sugar for a frequency axis:
                    // T_half is the paper's native timing-budget variable.
                    saw_thalf = true;
                    grid.freq_ghz = parse_floats(name, values)?
                        .into_iter()
                        .map(|ps| Gigahertz::from_half_period(Picoseconds::new(ps)).value())
                        .collect();
                }
                "corner" => {
                    grid.corners = split_list(values).map(str::to_owned).collect();
                }
                "clock" => {
                    // Validate eagerly so a typo'd backend fails before any
                    // jobs run; the label form is what gets hashed.
                    grid.clocks = split_list(values)
                        .map(|v| {
                            icnoc_clock::ClockBackend::parse(v)
                                .map(|b| b.label().to_owned())
                                .map_err(GridError)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "pattern" => {
                    // Validate each spec now so errors surface before any
                    // jobs run; the text form is what gets hashed.
                    grid.patterns = split_list(values)
                        .map(|v| pattern_from_spec(v).map(|_| v.to_owned()))
                        .collect::<Result<_, _>>()?;
                }
                "cycles" => grid.cycles = parse_ints(name, values)?,
                "soak" => grid.soak = parse_floats(name, values)?,
                "seed" => {
                    grid.seed = values.parse().map_err(|_| {
                        GridError(format!("seed expects an integer, got {values:?}"))
                    })?;
                }
                other => {
                    return Err(GridError(format!(
                        "unknown axis {other:?}; known axes: {}",
                        AXIS_NAMES.join(", ")
                    )))
                }
            }
        }
        if saw_freq && saw_thalf {
            return Err(GridError(
                "freq and thalf both set the frequency axis; give one".to_owned(),
            ));
        }
        Ok(grid)
    }

    /// The number of jobs this grid resolves to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
            * self.ports.len()
            * self.die_mm.len()
            * self.width_bits.len()
            * self.freq_ghz.len()
            * self.corners.len()
            * self.clocks.len()
            * self.patterns.len()
            * self.cycles.len()
            * self.soak.len()
    }

    /// Whether the grid resolves to zero jobs (an axis was emptied).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the grid into its job list, in the fixed axis order.
    #[must_use]
    pub fn resolve(&self) -> Vec<JobConfig> {
        let mut jobs = Vec::with_capacity(self.len());
        for &kind in &self.kinds {
            for &ports in &self.ports {
                for &die_mm in &self.die_mm {
                    for &width_bits in &self.width_bits {
                        for &freq_ghz in &self.freq_ghz {
                            for corner in &self.corners {
                                for clock in &self.clocks {
                                    for pattern in &self.patterns {
                                        for &cycles in &self.cycles {
                                            for &soak in &self.soak {
                                                jobs.push(JobConfig {
                                                    system: SystemConfig {
                                                        kind,
                                                        ports,
                                                        die_mm,
                                                        width_bits,
                                                        freq_ghz,
                                                        corner: corner.clone(),
                                                        clock: clock.clone(),
                                                    },
                                                    pattern: pattern.clone(),
                                                    cycles,
                                                    soak,
                                                    seed: self.seed,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }
}

fn split_list(values: &str) -> impl Iterator<Item = &str> {
    values.split(',').map(str::trim).filter(|v| !v.is_empty())
}

fn parse_floats(axis: &str, values: &str) -> Result<Vec<f64>, GridError> {
    let mut out = Vec::new();
    for v in split_list(values) {
        if let Some((range, n)) = v.split_once('/') {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| GridError(format!("{axis} range {v:?} must be lo..hi/n")))?;
            let lo: f64 = parse_num(axis, lo)?;
            let hi: f64 = parse_num(axis, hi)?;
            let n: usize = parse_num(axis, n)?;
            if n == 0 {
                return Err(GridError(format!("{axis} range {v:?} needs n >= 1")));
            }
            let step = if n == 1 {
                0.0
            } else {
                (hi - lo) / (n - 1) as f64
            };
            for i in 0..n {
                out.push(if i + 1 == n { hi } else { lo + step * i as f64 });
            }
        } else {
            out.push(parse_num(axis, v)?);
        }
    }
    Ok(out)
}

fn parse_ints<T>(axis: &str, values: &str) -> Result<Vec<T>, GridError>
where
    T: std::str::FromStr + Copy,
{
    let floats = parse_floats(axis, values)?;
    split_or_round(axis, values, &floats)
}

fn split_or_round<T>(axis: &str, values: &str, floats: &[f64]) -> Result<Vec<T>, GridError>
where
    T: std::str::FromStr + Copy,
{
    // Integer axes share the float grammar (so `ports=16..64/2` works);
    // each resolved value must land on an integer.
    let _ = values;
    floats
        .iter()
        .map(|&f| {
            if f < 0.0 || f.fract() != 0.0 {
                return Err(GridError(format!(
                    "{axis} value {f} must be a non-negative integer"
                )));
            }
            format!("{}", f as u64)
                .parse::<T>()
                .map_err(|_| GridError(format!("{axis} value {f} out of range")))
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(axis: &str, s: &str) -> Result<T, GridError> {
    s.trim()
        .parse()
        .map_err(|_| GridError(format!("bad number {s:?} in {axis} axis")))
}

/// Parses a traffic-pattern spec (the same grammar as the `icnoc sim
/// --pattern` flag): `uniform:RATE`, `neighbor:RATE`, `saturate`,
/// `silent`, `hotspot:RATE:TARGET:FRACTION`, `bursty:BURST:IDLE`,
/// `memory:RATE`.
///
/// # Errors
///
/// Returns a [`GridError`] for unknown pattern names or malformed numbers.
pub fn pattern_from_spec(spec: &str) -> Result<TrafficPattern, GridError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<f64, GridError> {
        s.parse()
            .map_err(|_| GridError(format!("bad number {s:?} in pattern {spec:?}")))
    };
    match parts.as_slice() {
        ["saturate"] => Ok(TrafficPattern::Saturate),
        ["silent"] => Ok(TrafficPattern::Silent),
        ["uniform", r] => Ok(TrafficPattern::Uniform { rate: num(r)? }),
        ["neighbor", r] | ["neighbour", r] => Ok(TrafficPattern::Neighbor { rate: num(r)? }),
        ["memory", r] => Ok(TrafficPattern::RandomMemory { rate: num(r)? }),
        ["hotspot", r, t, f] => Ok(TrafficPattern::Hotspot {
            rate: num(r)?,
            target: PortId(num(t)? as u32),
            fraction: num(f)?,
        }),
        ["bursty", b, i] => Ok(TrafficPattern::Bursty {
            burst: num(b)? as u32,
            idle: num(i)? as u32,
        }),
        _ => Err(GridError(format!(
            "unknown pattern {spec:?}; try uniform:0.2, neighbor:0.3, \
             hotspot:0.3:0:0.5, bursty:10:90, memory:0.2, saturate, silent"
        ))),
    }
}

/// One fully-resolved job: a system grid point plus its workload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// The system to build.
    pub system: SystemConfig,
    /// Traffic-pattern spec (text form; [`pattern_from_spec`] grammar).
    pub pattern: String,
    /// Cycles to simulate before draining.
    pub cycles: u64,
    /// Fault-soak scale (`0` disables injection).
    pub soak: f64,
    /// Master seed (shared across the grid; mixed per job).
    pub seed: u64,
}

impl JobConfig {
    /// The canonical text form: every field, in fixed order, with
    /// round-trip-exact float formatting. Equal configs — and only equal
    /// configs — produce equal canonical strings; this is the sole input
    /// to [`stable_hash`] and hence to job seeds and cache keys.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        let push_f64 = |s: &mut String, name: &str, v: f64| {
            s.push_str(name);
            s.push('=');
            s.push_str(&JsonValue::Num(v).to_compact());
            s.push(';');
        };
        s.push_str(&format!("kind={};", self.system.kind));
        s.push_str(&format!("ports={};", self.system.ports));
        push_f64(&mut s, "die", self.system.die_mm);
        s.push_str(&format!("width={};", self.system.width_bits));
        push_f64(&mut s, "freq", self.system.freq_ghz);
        s.push_str(&format!("corner={};", self.system.corner));
        s.push_str(&format!("clock={};", self.system.clock));
        s.push_str(&format!("pattern={};", self.pattern));
        s.push_str(&format!("cycles={};", self.cycles));
        push_f64(&mut s, "soak", self.soak);
        s.push_str(&format!("seed={}", self.seed));
        s
    }

    /// The job's stable 64-bit identity: FNV-1a over
    /// [`Self::canonical`]. Used as the per-job simulation
    /// seed, so results depend only on the resolved config — never on
    /// shard order, worker count or crate version.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        stable_hash(self.canonical().as_bytes())
    }

    /// The parsed traffic pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] if the stored spec is malformed (possible
    /// only for hand-built configs; [`GridSpec::parse`] validates).
    pub fn traffic(&self) -> Result<TrafficPattern, GridError> {
        pattern_from_spec(&self.pattern)
    }

    /// Serialises to a JSON object (field order fixed).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("kind".into(), JsonValue::Str(self.system.kind.to_string())),
            ("ports".into(), JsonValue::Num(self.system.ports as f64)),
            ("die_mm".into(), JsonValue::Num(self.system.die_mm)),
            (
                "width_bits".into(),
                JsonValue::Num(f64::from(self.system.width_bits)),
            ),
            ("freq_ghz".into(), JsonValue::Num(self.system.freq_ghz)),
            ("corner".into(), JsonValue::Str(self.system.corner.clone())),
            ("clock".into(), JsonValue::Str(self.system.clock.clone())),
            ("pattern".into(), JsonValue::Str(self.pattern.clone())),
            ("cycles".into(), JsonValue::Num(self.cycles as f64)),
            ("soak".into(), JsonValue::Num(self.soak)),
            ("seed".into(), JsonValue::Num(self.seed as f64)),
        ])
    }

    /// Deserialises from [`to_json`](Self::to_json)'s object form.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, GridError> {
        let f = |k: &str| -> Result<f64, GridError> {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| GridError(format!("job config missing numeric field {k:?}")))
        };
        let s = |k: &str| -> Result<&str, GridError> {
            v.get(k)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| GridError(format!("job config missing string field {k:?}")))
        };
        let kind = match s("kind")? {
            "binary" => TreeKind::Binary,
            "quad" => TreeKind::Quad,
            other => return Err(GridError(format!("unknown tree kind {other:?}"))),
        };
        Ok(Self {
            system: SystemConfig {
                kind,
                ports: f("ports")? as usize,
                die_mm: f("die_mm")?,
                width_bits: f("width_bits")? as u32,
                freq_ghz: f("freq_ghz")?,
                corner: s("corner")?.to_owned(),
                clock: s("clock")?.to_owned(),
            },
            pattern: s("pattern")?.to_owned(),
            cycles: f("cycles")? as u64,
            soak: f("soak")?,
            seed: f("seed")? as u64,
        })
    }
}

/// FNV-1a 64-bit over `bytes` — a fixed, documented hash (unlike
/// `std::hash::DefaultHasher`, whose algorithm may change between Rust
/// releases), so cache keys and job seeds survive toolchain upgrades.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_demonstrator_point() {
        let grid = GridSpec::parse("").expect("parses");
        assert_eq!(grid.len(), 1);
        let jobs = grid.resolve();
        assert_eq!(jobs[0].system, SystemConfig::demonstrator());
    }

    #[test]
    fn axes_multiply_and_resolve_in_fixed_order() {
        let grid =
            GridSpec::parse("kind=binary,quad;ports=16,64;freq=0.8,1.0;corner=nominal,slow30")
                .expect("parses");
        assert_eq!(grid.len(), 2 * 2 * 2 * 2);
        let jobs = grid.resolve();
        assert_eq!(jobs.len(), 16);
        // Innermost axis varies fastest; kind varies slowest.
        assert_eq!(jobs[0].system.kind, TreeKind::Binary);
        assert_eq!(jobs[0].system.corner, "nominal");
        assert_eq!(jobs[1].system.corner, "slow30");
        assert_eq!(jobs[8].system.kind, TreeKind::Quad);
    }

    #[test]
    fn linspace_ranges_hit_both_endpoints() {
        let grid = GridSpec::parse("freq=0.5..1.5/5").expect("parses");
        assert_eq!(grid.freq_ghz.len(), 5);
        assert_eq!(grid.freq_ghz[0], 0.5);
        assert_eq!(grid.freq_ghz[4], 1.5);
        // Mixed list + range.
        let grid = GridSpec::parse("die=5,10..20/3").expect("parses");
        assert_eq!(grid.die_mm, vec![5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn thalf_is_sugar_for_frequency() {
        // T_half = 500 ps ⇒ 1 GHz.
        let grid = GridSpec::parse("thalf=500").expect("parses");
        assert!((grid.freq_ghz[0] - 1.0).abs() < 1e-12);
        assert!(GridSpec::parse("freq=1;thalf=500").is_err());
    }

    #[test]
    fn pattern_axis_keeps_colon_specs_intact() {
        let grid =
            GridSpec::parse("pattern=uniform:0.2,hotspot:0.3:0:0.5;ports=16").expect("parses");
        assert_eq!(grid.patterns, vec!["uniform:0.2", "hotspot:0.3:0:0.5"]);
        assert!(GridSpec::parse("pattern=wavy:1").is_err());
    }

    #[test]
    fn unknown_axes_name_the_full_valid_axis_set() {
        // Mirrors the fault-spec parser's unknown-key style: the error
        // must enumerate every axis the grammar accepts, so a typo is
        // always one read away from the fix.
        let err = GridSpec::parse("frequency=1.0").expect_err("unknown axis");
        for axis in AXIS_NAMES {
            assert!(err.0.contains(axis), "error must name {axis:?}: {err}");
        }
        assert!(err.0.contains("frequency"), "{err}");
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        for bad in [
            "ports",           // no '='
            "ports=",          // empty values
            "ports=1.5",       // non-integer on integer axis
            "bogus=1",         // unknown axis
            "freq=a..b/3",     // bad range bounds
            "freq=1..2/0",     // zero samples
            "kind=ring",       // unknown kind
            "seed=not-a-seed", // bad seed
        ] {
            assert!(GridSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn canonical_is_injective_over_distinct_configs_and_hash_is_stable() {
        let a = GridSpec::parse("freq=1.0").expect("parses").resolve();
        let b = GridSpec::parse("freq=1.1").expect("parses").resolve();
        assert_ne!(a[0].canonical(), b[0].canonical());
        assert_ne!(a[0].stable_hash(), b[0].stable_hash());
        // FNV-1a test vectors: the algorithm is pinned, not incidental.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Identical configs hash identically across resolutions.
        let a2 = GridSpec::parse("freq=1.0").expect("parses").resolve();
        assert_eq!(a[0].stable_hash(), a2[0].stable_hash());
    }

    #[test]
    fn clock_axis_sweeps_backends_and_salts_the_canonical_form() {
        let grid = GridSpec::parse("clock=forwarded,redundant;ports=16").expect("parses");
        assert_eq!(grid.len(), 2);
        let jobs = grid.resolve();
        assert_eq!(jobs[0].system.clock, "forwarded");
        assert_eq!(jobs[1].system.clock, "redundant");
        // The backend is part of the canonical form, so the two jobs get
        // distinct seeds and distinct cache keys.
        assert_ne!(jobs[0].canonical(), jobs[1].canonical());
        assert_ne!(jobs[0].stable_hash(), jobs[1].stable_hash());
        assert!(jobs[0].canonical().contains("clock=forwarded;"));
        // Typos fail at parse time with the valid set named.
        let err = GridSpec::parse("clock=gradient").expect_err("unknown backend");
        assert!(err.0.contains("redundant"), "{err}");
    }

    #[test]
    fn job_config_round_trips_through_json() {
        let jobs = GridSpec::parse("kind=quad;ports=16;pattern=hotspot:0.3:0:0.5;soak=1.5")
            .expect("parses")
            .resolve();
        let back = JobConfig::from_json(&jobs[0].to_json()).expect("round-trips");
        assert_eq!(back, jobs[0]);
        assert!(JobConfig::from_json(&JsonValue::Obj(vec![])).is_err());
    }
}
