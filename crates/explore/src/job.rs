//! Executing one grid point: build → verify → simulate → summarise.

use icnoc_sim::{FaultRates, ReportDigest, SimKernel, SimReport};
use icnoc_timing::ProcessVariation;
use icnoc_units::Gigahertz;

use crate::grid::{GridError, JobConfig};
use crate::json::JsonValue;

/// The sigma multiplier used for every corner verification in a sweep
/// (the paper's 3σ yield target).
pub const K_SIGMA: f64 = 3.0;

/// The compact, serialisable result of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The resolved configuration this outcome belongs to.
    pub config: JobConfig,
    /// [`JobConfig::stable_hash`] — the job identity and simulation seed.
    pub hash: u64,
    /// The builder error, if the system could not be constructed at this
    /// grid point (e.g. routers cannot reach the requested clock).
    pub build_error: Option<String>,
    /// Whether the built system meets timing at the job's process corner
    /// under [`K_SIGMA`] variation. `false` whenever `build_error` is set.
    pub feasible: bool,
    /// The fastest timing-safe clock at this corner (GHz) — the system's
    /// graceful-degradation headroom. `0` if the point cannot build at
    /// any frequency.
    pub safe_freq_ghz: f64,
    /// The longest pipeline segment of the floorplan (mm); `0` without a
    /// built system.
    pub max_segment_mm: f64,
    /// Simulation headline numbers; `None` when the system did not build.
    pub digest: Option<ReportDigest>,
    /// Kernel-introspection summary, present only when the sweep ran
    /// with profiling enabled. Nondeterministic (wall-derived ratios),
    /// so it is emitted next to `wall_ms`, stripped before caching, and
    /// never read back from JSON.
    pub perf: Option<JobPerf>,
    /// Wall-clock milliseconds the job took (excluded from comparisons:
    /// the only non-deterministic field besides `perf`).
    pub wall_ms: u64,
}

/// The per-job slice of the simulator's `perf` section a sweep records:
/// just the headline ratios, not the per-epoch timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPerf {
    /// Stable kernel label (`dense` / `event` / `parallel`).
    pub kernel: String,
    /// Resolved worker count (1 on sequential kernels and the fallback).
    pub workers: u32,
    /// Barrier epochs (half-cycle ticks) executed.
    pub epochs: u64,
    /// Sequential-fallback cause label, if the parallel kernel fell back.
    pub fallback: Option<String>,
    /// Max/mean shard steps (1.0 = perfectly balanced).
    pub load_imbalance: f64,
    /// Fraction of worker wall time spent at barriers (0.0 when
    /// unavailable).
    pub barrier_fraction: f64,
    /// Speculate-and-replay commit rate (committed windows / attempted
    /// windows); `None` when speculation is off or never attempted.
    pub speculation_commit_rate: Option<f64>,
}

/// Builds, verifies and simulates one grid point.
///
/// A build failure is a *result*, not an error: the outcome records the
/// message, reports the point infeasible, and still computes the
/// graceful-degradation frequency by re-building the same geometry at a
/// low reference clock where possible.
///
/// # Errors
///
/// Returns a [`GridError`] only for configs that cannot even be
/// interpreted (unknown corner label or malformed pattern spec) —
/// conditions [`crate::GridSpec::parse`] has already screened out.
pub fn run_job(config: &JobConfig) -> Result<JobOutcome, GridError> {
    run_job_with_kernel(config, SimKernel::default())
}

/// Like [`run_job`], but simulating with an explicit stepping
/// [`SimKernel`]. The kernel is an **execution** option, not part of the
/// job identity: every kernel produces bit-identical reports, so outcomes
/// keep the same [`JobConfig::stable_hash`] and remain cache-compatible
/// whichever kernel computed them. Speculate-and-replay is resolved from
/// `ICNOC_SPECULATE` ([`icnoc_sim::speculation_from_env`]) — also an
/// execution option, since committed speculative state is bit-identical.
///
/// # Errors
///
/// See [`run_job`].
pub fn run_job_with_kernel(config: &JobConfig, kernel: SimKernel) -> Result<JobOutcome, GridError> {
    run_job_with_options(config, kernel, false, icnoc_sim::speculation_from_env())
}

/// Like [`run_job_with_kernel`], with per-job kernel profiling and an
/// explicit speculate-and-replay window bound as opt-ins. Neither changes
/// simulation results — the outcome merely gains a [`JobPerf`] summary
/// (which cache writers strip, keeping cache contents kernel- and
/// profiling-invariant).
///
/// # Errors
///
/// See [`run_job`].
pub fn run_job_with_options(
    config: &JobConfig,
    kernel: SimKernel,
    profile: bool,
    speculate: Option<u32>,
) -> Result<JobOutcome, GridError> {
    let corner = config
        .system
        .resolve_corner()
        .map_err(|e| GridError(e.to_string()))?;
    let pattern = config.traffic()?;
    let hash = config.stable_hash();
    let started = std::time::Instant::now();

    let outcome = match config.system.build() {
        Err(err) => {
            // The point is off the feasible surface; salvage the
            // degradation curve from a slow-clock rebuild of the same
            // geometry (0 if even that fails, e.g. a topology error).
            let mut reference = config.system.clone();
            reference.freq_ghz = REFERENCE_GHZ;
            let safe_freq_ghz = reference
                .build()
                .map(|sys| safe_frequency(&sys, corner.variation()))
                .unwrap_or(0.0);
            JobOutcome {
                config: config.clone(),
                hash,
                build_error: Some(err.to_string()),
                feasible: false,
                safe_freq_ghz,
                max_segment_mm: 0.0,
                digest: None,
                perf: None,
                wall_ms: 0,
            }
        }
        Ok(system) => {
            let verification = system.verify_under(corner.variation(), K_SIGMA);
            // Mirror `System::simulate` / `simulate_with_faults` exactly
            // (same drain budgets) so outcomes stay bit-identical to the
            // default-kernel path at every grid point.
            let report: SimReport = {
                let patterns = vec![pattern; system.tree().num_ports()];
                let mut net = system.network_with_kernel(&patterns, hash, kernel);
                net.set_speculation(speculate);
                if profile {
                    net.enable_profiling();
                }
                if config.soak > 0.0 {
                    let plan = system
                        .fault_plan(hash)
                        .with_rates(FaultRates::soak().scaled(config.soak));
                    net.enable_faults(plan);
                    net.run_cycles(config.cycles);
                    net.drain(config.cycles.max(1_000).saturating_mul(4));
                } else {
                    net.run_cycles(config.cycles);
                    net.drain(config.cycles.max(1_000));
                }
                net.report()
            };
            JobOutcome {
                config: config.clone(),
                hash,
                build_error: None,
                feasible: verification.is_timing_safe(),
                safe_freq_ghz: safe_frequency(&system, corner.variation()),
                max_segment_mm: system.max_segment().value(),
                digest: Some(report.digest()),
                perf: report.perf.as_ref().map(|p| JobPerf {
                    kernel: p.kernel.clone(),
                    workers: p.workers,
                    epochs: p.epochs,
                    fallback: p.fallback.map(|c| c.label().to_owned()),
                    load_imbalance: p.load_imbalance(),
                    barrier_fraction: p.barrier_fraction().unwrap_or(0.0),
                    speculation_commit_rate: p.speculation.and_then(|s| s.commit_rate()),
                }),
                wall_ms: 0,
            }
        }
    };
    Ok(JobOutcome {
        wall_ms: started.elapsed().as_millis() as u64,
        ..outcome
    })
}

/// The reference clock used to recover a degradation frequency for
/// points that fail to build at their requested clock.
const REFERENCE_GHZ: f64 = 0.1;

/// The fastest safe clock of `system` at `variation`, additionally capped
/// by the router class's own frequency ceiling (the link analysis alone
/// does not know about router logic depth).
fn safe_frequency(system: &icnoc::System, variation: ProcessVariation) -> f64 {
    let links: Gigahertz = system.max_safe_frequency(variation, K_SIGMA);
    let router = system.tree().router_class().max_frequency();
    links.value().min(router.value())
}

impl JobOutcome {
    /// A synthetic infeasible outcome recording a panic or
    /// interpretation failure, so one diverged job cannot sink a sweep
    /// (or a service worker). Never cached.
    #[must_use]
    pub fn failed(config: &JobConfig, msg: &str) -> Self {
        Self {
            config: config.clone(),
            hash: config.stable_hash(),
            build_error: Some(format!("job failed: {msg}")),
            feasible: false,
            safe_freq_ghz: 0.0,
            max_segment_mm: 0.0,
            digest: None,
            perf: None,
            wall_ms: 0,
        }
    }

    /// Serialises to a JSON object. The nondeterministic fields come
    /// last: `perf` (present only on profiled sweeps) just before
    /// `wall_ms`, so consumers comparing runs can strip them.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("config".into(), self.config.to_json()),
            ("hash".into(), JsonValue::Str(format!("{:016x}", self.hash))),
            (
                "build_error".into(),
                match &self.build_error {
                    Some(e) => JsonValue::Str(e.clone()),
                    None => JsonValue::Null,
                },
            ),
            ("feasible".into(), JsonValue::Bool(self.feasible)),
            ("safe_freq_ghz".into(), JsonValue::Num(self.safe_freq_ghz)),
            ("max_segment_mm".into(), JsonValue::Num(self.max_segment_mm)),
            (
                "digest".into(),
                match &self.digest {
                    Some(d) => digest_to_json(d),
                    None => JsonValue::Null,
                },
            ),
        ];
        if let Some(p) = &self.perf {
            pairs.push((
                "perf".into(),
                JsonValue::Obj(vec![
                    ("kernel".into(), JsonValue::Str(p.kernel.clone())),
                    ("workers".into(), JsonValue::Num(f64::from(p.workers))),
                    ("epochs".into(), JsonValue::Num(p.epochs as f64)),
                    (
                        "fallback".into(),
                        match &p.fallback {
                            Some(cause) => JsonValue::Str(cause.clone()),
                            None => JsonValue::Null,
                        },
                    ),
                    ("load_imbalance".into(), JsonValue::Num(p.load_imbalance)),
                    (
                        "barrier_fraction".into(),
                        JsonValue::Num(p.barrier_fraction),
                    ),
                    (
                        "speculation_commit_rate".into(),
                        match p.speculation_commit_rate {
                            Some(rate) => JsonValue::Num(rate),
                            None => JsonValue::Null,
                        },
                    ),
                ]),
            ));
        }
        pairs.push(("wall_ms".into(), JsonValue::Num(self.wall_ms as f64)));
        JsonValue::Obj(pairs)
    }

    /// Deserialises from [`to_json`](Self::to_json)'s object form.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, GridError> {
        let config = JobConfig::from_json(
            v.get("config")
                .ok_or_else(|| GridError("outcome missing config".to_owned()))?,
        )?;
        let hash_hex = v
            .get("hash")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| GridError("outcome missing hash".to_owned()))?;
        let hash = u64::from_str_radix(hash_hex, 16)
            .map_err(|_| GridError(format!("bad outcome hash {hash_hex:?}")))?;
        let num = |k: &str| -> Result<f64, GridError> {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| GridError(format!("outcome missing numeric field {k:?}")))
        };
        Ok(Self {
            config,
            hash,
            build_error: match v.get("build_error") {
                Some(JsonValue::Str(e)) => Some(e.clone()),
                _ => None,
            },
            feasible: v
                .get("feasible")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| GridError("outcome missing feasible".to_owned()))?,
            safe_freq_ghz: num("safe_freq_ghz")?,
            max_segment_mm: num("max_segment_mm")?,
            digest: match v.get("digest") {
                Some(JsonValue::Null) | None => None,
                Some(d) => Some(digest_from_json(d)?),
            },
            // Perf telemetry is output-only: it is nondeterministic, so a
            // reloaded outcome (the cache path) deliberately drops it.
            perf: None,
            wall_ms: num("wall_ms")? as u64,
        })
    }
}

fn digest_to_json(d: &ReportDigest) -> JsonValue {
    JsonValue::Obj(vec![
        ("cycles".into(), JsonValue::Num(d.cycles as f64)),
        ("sent".into(), JsonValue::Num(d.sent as f64)),
        ("delivered".into(), JsonValue::Num(d.delivered as f64)),
        ("throughput".into(), JsonValue::Num(d.throughput)),
        ("mean_latency".into(), JsonValue::Num(d.mean_latency)),
        ("p50".into(), JsonValue::Num(d.p50)),
        ("p95".into(), JsonValue::Num(d.p95)),
        ("p99".into(), JsonValue::Num(d.p99)),
        ("max_latency".into(), JsonValue::Num(d.max_latency)),
        ("correct".into(), JsonValue::Bool(d.correct)),
        ("responses".into(), JsonValue::Num(d.responses as f64)),
        (
            "faults_injected".into(),
            JsonValue::Num(d.faults_injected as f64),
        ),
        (
            "faults_recovered".into(),
            JsonValue::Num(d.faults_recovered as f64),
        ),
        ("faults_lost".into(), JsonValue::Num(d.faults_lost as f64)),
        (
            "retransmissions".into(),
            JsonValue::Num(d.retransmissions as f64),
        ),
        ("effective_ghz".into(), JsonValue::Num(d.effective_ghz)),
    ])
}

fn digest_from_json(v: &JsonValue) -> Result<ReportDigest, GridError> {
    let num = |k: &str| -> Result<f64, GridError> {
        v.get(k)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| GridError(format!("digest missing field {k:?}")))
    };
    Ok(ReportDigest {
        cycles: num("cycles")? as u64,
        sent: num("sent")? as u64,
        delivered: num("delivered")? as u64,
        throughput: num("throughput")?,
        mean_latency: num("mean_latency")?,
        p50: num("p50")?,
        p95: num("p95")?,
        p99: num("p99")?,
        max_latency: num("max_latency")?,
        correct: v
            .get("correct")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| GridError("digest missing correct".to_owned()))?,
        responses: num("responses")? as u64,
        faults_injected: num("faults_injected")? as u64,
        faults_recovered: num("faults_recovered")? as u64,
        faults_lost: num("faults_lost")? as u64,
        retransmissions: num("retransmissions")? as u64,
        effective_ghz: num("effective_ghz")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn demonstrator_point_is_feasible_and_simulates() {
        let job = &GridSpec::parse("cycles=300").expect("parses").resolve()[0];
        let outcome = run_job(job).expect("runs");
        assert!(outcome.build_error.is_none());
        assert!(outcome.feasible, "the paper's demonstrator meets timing");
        // The degradation solver's epsilon guard sits fractionally below
        // the exact bound, so compare with a tolerance.
        assert!(outcome.safe_freq_ghz >= 1.0 - 1e-6);
        let digest = outcome.digest.expect("simulated");
        assert!(digest.correct);
        assert!(digest.delivered > 0);
    }

    #[test]
    fn unbuildable_point_records_the_error_and_a_degradation_freq() {
        // 3 GHz exceeds the router class ceiling: build fails.
        let job = &GridSpec::parse("freq=3.0;cycles=100")
            .expect("parses")
            .resolve()[0];
        let outcome = run_job(job).expect("runs");
        assert!(outcome.build_error.is_some());
        assert!(!outcome.feasible);
        assert!(outcome.digest.is_none());
        // But the geometry still has a safe operating frequency.
        assert!(outcome.safe_freq_ghz > 0.0);
        assert!(outcome.safe_freq_ghz < 3.0);
    }

    #[test]
    fn identical_configs_yield_identical_outcomes() {
        let job = &GridSpec::parse("ports=16;cycles=200;soak=1")
            .expect("parses")
            .resolve()[0];
        let mut a = run_job(job).expect("runs");
        let mut b = run_job(job).expect("runs");
        a.wall_ms = 0;
        b.wall_ms = 0;
        assert_eq!(a, b);
        assert!(a.digest.expect("simulated").faults_injected > 0);
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let job = &GridSpec::parse("ports=16;cycles=150")
            .expect("parses")
            .resolve()[0];
        let outcome = run_job(job).expect("runs");
        let text = outcome.to_json().to_pretty();
        let back = JobOutcome::from_json(&JsonValue::parse(&text).expect("parses")).expect("loads");
        assert_eq!(back, outcome);
        // wall_ms sits on its own final line in pretty form, so run
        // comparisons can strip it textually.
        let wall_lines: Vec<&str> = text.lines().filter(|l| l.contains("wall_ms")).collect();
        assert_eq!(wall_lines.len(), 1);
    }
}
