//! The skew-balanced global clock tree baseline (Section 2).
//!
//! Globally synchronous NoCs need the clock delivered to every tile with
//! tightly controlled skew. That takes a balanced H-tree plus "large power
//! hungry buffers ... to reduce the delay variations". This module models
//! that cost so it can be compared against the IC-NoC's forwarded clock,
//! which spends the same wire but none of the balancing overhead.

use crate::ClockPowerModel;
use icnoc_topology::{Floorplan, TopologyError, TreeTopology};
use icnoc_units::{Gigahertz, Millimeters, Milliwatts, Picoseconds};
use serde::{Deserialize, Serialize};

/// Fraction of a clock branch's delay that mismatches between branches when
/// no active compensation is spent (process variation across the die).
/// ITRS-era analyses put uncompensated branch mismatch around 10 %.
const UNCOMPENSATED_MISMATCH: f64 = 0.10;

/// A balanced global clock tree serving every leaf of a die, with buffer
/// sizing driven by a target skew.
///
/// The buffer power overhead scales inversely with the skew target: halving
/// the allowed skew requires roughly doubling the compensation effort
/// (buffer upsizing, de-skew circuitry). The forwarded IC-NoC clock needs
/// **no** skew target at all — its comparison point is
/// [`GlobalClockTree::forwarded_equivalent_power`].
///
/// ```
/// use icnoc_clock::GlobalClockTree;
/// use icnoc_units::{Gigahertz, Millimeters, Picoseconds};
///
/// let tree = GlobalClockTree::balanced(64, Millimeters::new(10.0),
///                                      Picoseconds::new(30.0))?;
/// let f = Gigahertz::new(1.0);
/// // Tight-skew balancing costs strictly more than the forwarded clock.
/// assert!(tree.power(f) > tree.forwarded_equivalent_power(f));
/// # Ok::<(), icnoc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalClockTree {
    leaves: usize,
    total_wire: Millimeters,
    branch_delay: Picoseconds,
    target_skew: Picoseconds,
    power_model: ClockPowerModel,
}

impl GlobalClockTree {
    /// Builds a balanced binary H-tree delivering the clock to `leaves`
    /// tiles on a square die of edge `die_edge`, engineered to keep skew
    /// below `target_skew`.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if `leaves` is not a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `target_skew` is not strictly positive.
    pub fn balanced(
        leaves: usize,
        die_edge: Millimeters,
        target_skew: Picoseconds,
    ) -> Result<Self, TopologyError> {
        assert!(
            target_skew.value() > 0.0,
            "a skew target of zero is unachievable"
        );
        let tree = TreeTopology::binary(leaves)?;
        let plan = Floorplan::h_tree(&tree, die_edge, die_edge);
        let power_model = ClockPowerModel::nominal_90nm();
        // Branch delay: root-to-leaf wire delay (all branches equal in a
        // balanced H-tree).
        let mut branch_delay = Picoseconds::ZERO;
        let mut node = tree.leaf(icnoc_topology::PortId(0)).expect("port 0 exists");
        while let Some(link) = tree.uplink(node) {
            branch_delay += power_model.wire().delay(plan.link_length(link));
            node = tree.link_endpoints(link).1;
        }
        Ok(Self {
            leaves,
            total_wire: plan.total_wire_length(),
            branch_delay,
            target_skew,
            power_model,
        })
    }

    /// Number of leaves served.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Total clock wire length in the balanced tree.
    #[must_use]
    pub fn total_wire(&self) -> Millimeters {
        self.total_wire
    }

    /// Nominal root-to-leaf wire delay of one branch.
    #[must_use]
    pub fn branch_delay(&self) -> Picoseconds {
        self.branch_delay
    }

    /// Uncompensated skew between branches: the mismatch fraction of the
    /// branch delay.
    #[must_use]
    pub fn uncompensated_skew(&self) -> Picoseconds {
        self.branch_delay * UNCOMPENSATED_MISMATCH
    }

    /// Buffer/de-skew power multiplier needed to squeeze the uncompensated
    /// skew down to the target: `max(1, uncompensated / target)`.
    #[must_use]
    pub fn balancing_overhead(&self) -> f64 {
        (self.uncompensated_skew() / self.target_skew).max(1.0)
    }

    /// Total clock distribution power at frequency `f`, including the
    /// balancing overhead.
    #[must_use]
    pub fn power(&self, f: Gigahertz) -> Milliwatts {
        self.power_model.wire_power(self.total_wire, f) * self.balancing_overhead()
    }

    /// Power of the same wire when driven as a *forwarded* clock: no skew
    /// target, overhead factor 1. This is the IC-NoC's clock cost on the
    /// identical floorplan (before clock gating shrinks it further).
    #[must_use]
    pub fn forwarded_equivalent_power(&self, f: Gigahertz) -> Milliwatts {
        self.power_model.wire_power(self.total_wire, f)
    }

    /// How many times more power the balanced tree burns than the
    /// forwarded clock.
    #[must_use]
    pub fn power_ratio_vs_forwarded(&self) -> f64 {
        self.balancing_overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demo(target_ps: f64) -> GlobalClockTree {
        GlobalClockTree::balanced(64, Millimeters::new(10.0), Picoseconds::new(target_ps))
            .expect("64 is a power of 2")
    }

    #[test]
    fn branch_delay_is_root_to_leaf_wire_delay() {
        let t = demo(30.0);
        // Branch lengths: 2.5 + 2.5 + 1.25 + 1.25 + 0.625 + 0.625 mm,
        // each with its own quadratic term: ≈1.5 ns root-to-leaf.
        assert!(t.branch_delay().value() > 1200.0 && t.branch_delay().value() < 1800.0);
    }

    #[test]
    fn tighter_skew_targets_cost_more_power() {
        let loose = demo(100.0);
        let tight = demo(10.0);
        let f = Gigahertz::new(1.0);
        assert!(tight.power(f) > loose.power(f));
        assert!(tight.balancing_overhead() > loose.balancing_overhead());
    }

    #[test]
    fn forwarded_clock_never_loses() {
        for target in [5.0, 20.0, 50.0, 500.0] {
            let t = demo(target);
            let f = Gigahertz::new(1.0);
            assert!(t.power(f) >= t.forwarded_equivalent_power(f));
            assert!(t.power_ratio_vs_forwarded() >= 1.0);
        }
    }

    #[test]
    fn generous_target_reaches_unity_overhead() {
        // If the target exceeds the natural mismatch, nothing extra is paid.
        let t = demo(10_000.0);
        assert_eq!(t.balancing_overhead(), 1.0);
    }

    #[test]
    fn non_power_of_two_leaf_count_is_error() {
        assert!(
            GlobalClockTree::balanced(48, Millimeters::new(10.0), Picoseconds::new(30.0)).is_err()
        );
    }

    proptest! {
        #[test]
        fn power_scales_linearly_with_frequency(f in 0.1f64..3.0) {
            let t = demo(30.0);
            let p1 = t.power(Gigahertz::new(f));
            let p2 = t.power(Gigahertz::new(2.0 * f));
            prop_assert!((p2.value() - 2.0 * p1.value()).abs() < 1e-9);
        }

        #[test]
        fn bigger_dies_burn_more_clock_power(edge in 5.0f64..30.0) {
            let small = GlobalClockTree::balanced(
                64, Millimeters::new(edge), Picoseconds::new(30.0),
            ).expect("valid");
            let large = GlobalClockTree::balanced(
                64, Millimeters::new(edge * 1.5), Picoseconds::new(30.0),
            ).expect("valid");
            prop_assert!(large.power(Gigahertz::new(1.0)) > small.power(Gigahertz::new(1.0)));
        }
    }
}
