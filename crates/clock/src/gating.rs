//! Fine-grained clock gating accounting (Section 5).
//!
//! In the IC-NoC's flow control, a stage's registers are only enabled when
//! valid data can actually advance; otherwise the clock is gated. Since NoC
//! traffic is bursty, "the network will lay idle for long periods, and
//! power consumption during idleness is of a major concern" — the gated
//! fraction is therefore a first-order power metric.

use serde::{Deserialize, Serialize};

/// Counts of enabled vs gated register clock edges, accumulated by the
/// simulator per stage (or aggregated network-wide).
///
/// ```
/// use icnoc_clock::ClockGatingStats;
///
/// let mut stats = ClockGatingStats::new();
/// for _ in 0..3 {
///     stats.record_enabled();
/// }
/// stats.record_gated();
/// assert_eq!(stats.total_edges(), 4);
/// assert_eq!(stats.gated_fraction(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClockGatingStats {
    enabled: u64,
    gated: u64,
}

impl ClockGatingStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from pre-computed counts — used by simulators
    /// that track only enabled edges eagerly and derive the gated count
    /// from elapsed time (an idle stage then costs nothing per edge,
    /// mirroring the hardware's gated clock).
    #[must_use]
    pub fn from_counts(enabled: u64, gated: u64) -> Self {
        Self { enabled, gated }
    }

    /// Records one active (register-enabled) clock edge.
    pub fn record_enabled(&mut self) {
        self.enabled += 1;
    }

    /// Records one gated (register held) clock edge.
    pub fn record_gated(&mut self) {
        self.gated += 1;
    }

    /// Records an edge with the given enable value.
    pub fn record(&mut self, enabled: bool) {
        if enabled {
            self.record_enabled();
        } else {
            self.record_gated();
        }
    }

    /// Number of enabled edges.
    #[must_use]
    pub fn enabled_edges(&self) -> u64 {
        self.enabled
    }

    /// Number of gated edges.
    #[must_use]
    pub fn gated_edges(&self) -> u64 {
        self.gated
    }

    /// All observed edges.
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        self.enabled + self.gated
    }

    /// Fraction of edges that were gated (0.0 with no observations).
    #[must_use]
    pub fn gated_fraction(&self) -> f64 {
        if self.total_edges() == 0 {
            0.0
        } else {
            self.gated as f64 / self.total_edges() as f64
        }
    }

    /// Fraction of edges that clocked the registers.
    #[must_use]
    pub fn activity(&self) -> f64 {
        if self.total_edges() == 0 {
            0.0
        } else {
            self.enabled as f64 / self.total_edges() as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ClockGatingStats) {
        self.enabled += other.enabled;
        self.gated += other.gated;
    }
}

impl core::iter::Sum for ClockGatingStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut acc = Self::new();
        for s in iter {
            acc.merge(&s);
        }
        acc
    }
}

impl core::fmt::Display for ClockGatingStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{} edges gated ({:.1}%)",
            self.gated,
            self.total_edges(),
            self.gated_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = ClockGatingStats::new();
        assert_eq!(s.total_edges(), 0);
        assert_eq!(s.gated_fraction(), 0.0);
        assert_eq!(s.activity(), 0.0);
    }

    #[test]
    fn fractions_are_complementary() {
        let mut s = ClockGatingStats::new();
        for i in 0..10 {
            s.record(i % 3 == 0);
        }
        assert!((s.gated_fraction() + s.activity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_sum_accumulate() {
        let mut a = ClockGatingStats::new();
        a.record_enabled();
        let mut b = ClockGatingStats::new();
        b.record_gated();
        b.record_gated();
        let total: ClockGatingStats = [a, b].into_iter().sum();
        assert_eq!(total.enabled_edges(), 1);
        assert_eq!(total.gated_edges(), 2);
    }

    #[test]
    fn display_shows_percentage() {
        let mut s = ClockGatingStats::new();
        s.record_gated();
        s.record_enabled();
        assert!(s.to_string().contains("50.0%"));
    }
}
