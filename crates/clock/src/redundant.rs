//! TRIX-style redundant-pulse clock distribution.
//!
//! Instead of one forwarded pulse per branch, every non-root node listens
//! to **three upstream pulse paths** — its parent plus relay copies through
//! the parent's adjacent siblings — and fires on the *median* arrival after
//! a small voter delay. A single dead upstream node therefore never silences
//! a whole subtree: the orphaned children keep capturing off the surviving
//! relay pulses, at the cost of one voter delay of extra skew per level.

use crate::distribution::{ClockBackend, ClockDistribution, ClockPolarity};
use icnoc_timing::WireModel;
use icnoc_topology::{Floorplan, NodeId, TreeTopology};
use icnoc_units::{Gigahertz, Picoseconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Extra latency of the 3-way median voter in front of every clock input,
/// in picoseconds.
///
/// Charged once per tree level, it is the price of fault tolerance: the
/// redundant backend's link skew is the forwarded backend's plus this
/// constant, which the timing analysis absorbs like any other skew.
pub const VOTER_DELAY_PS: f64 = 12.0;

fn voter_delay() -> Picoseconds {
    Picoseconds::new(VOTER_DELAY_PS)
}

/// Per-node clock arrivals under the redundant-pulse scheme.
///
/// Polarity still alternates with depth (the alternating-edge handshake of
/// Section 5 is preserved), but each node's arrival is the median of three
/// candidate pulses. On degenerate fan-ins the triplet repeats sources — a
/// binary tree gives each node two *distinct* upstream sources (parent and
/// one uncle), the quad tree gives three — and a node stays clocked as long
/// as at least one distinct upstream source is alive and itself clocked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundantPulseClock {
    frequency: Gigahertz,
    arrival: Vec<Picoseconds>,
    polarity: Vec<ClockPolarity>,
    /// Whether each node still receives a usable pulse (false only when the
    /// distribution was built with outages that disconnect the node).
    clocked: Vec<bool>,
    /// Number of distinct upstream pulse sources per node (0 for the root).
    redundancy: Vec<u8>,
}

impl RedundantPulseClock {
    /// Builds the fault-free redundant distribution over a placed tree.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn new(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        Self::degraded(tree, plan, wire, frequency, &[])
    }

    /// Builds the distribution with the given nodes dead: every pulse path
    /// through a dead (or itself unclocked) relay is discarded and each
    /// node takes the median of its surviving candidates. Nodes left with
    /// no live upstream source — or dead themselves — are marked unclocked.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn degraded(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
        dead: &[NodeId],
    ) -> Self {
        assert!(frequency.value() > 0.0, "clock must run");
        let n = tree.node_count();
        let dead: BTreeSet<usize> = dead.iter().map(|d| d.index()).collect();
        let mut arrival = vec![Picoseconds::ZERO; n];
        let mut polarity = vec![ClockPolarity::Rising; n];
        let mut clocked = vec![false; n];
        let mut redundancy = vec![0u8; n];
        clocked[tree.root().index()] = !dead.contains(&tree.root().index());
        // BFS from the root; every relay of a node sits at the parent's
        // level, so all candidate sources are resolved before the node.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.root());
        while let Some(node) = queue.pop_front() {
            for &child in tree.children(node) {
                let link = tree.uplink(child).expect("children are non-root");
                let d_up = wire.delay(plan.link_length(link));
                polarity[child.index()] = polarity[node.index()].inverted();
                let sources = Self::pulse_sources(tree, child);
                redundancy[child.index()] = {
                    let distinct: BTreeSet<usize> = sources.iter().map(|s| s.index()).collect();
                    u8::try_from(distinct.len()).expect("at most 3 sources")
                };
                let mut candidates: Vec<Picoseconds> = sources
                    .iter()
                    .filter(|s| clocked[s.index()])
                    .map(|s| arrival[s.index()] + d_up)
                    .collect();
                if !dead.contains(&child.index()) && !candidates.is_empty() {
                    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
                    arrival[child.index()] = candidates[candidates.len() / 2] + voter_delay();
                    clocked[child.index()] = true;
                }
                queue.push_back(child);
            }
        }
        Self {
            frequency,
            arrival,
            polarity,
            clocked,
            redundancy,
        }
    }

    /// The three candidate pulse sources of a non-root node: its parent,
    /// plus the parent's previous and next siblings (wrapping around the
    /// grandparent's child list). Repeats the parent where no distinct
    /// sibling exists, so the triplet is always length 3.
    fn pulse_sources(tree: &TreeTopology, node: NodeId) -> [NodeId; 3] {
        let parent = tree.parent(node).expect("non-root");
        match tree.parent(parent) {
            None => [parent, parent, parent],
            Some(grand) => {
                let aunts = tree.children(grand);
                let i = aunts
                    .iter()
                    .position(|&a| a == parent)
                    .expect("parent is a child of its parent");
                let prev = aunts[(i + aunts.len() - 1) % aunts.len()];
                let next = aunts[(i + 1) % aunts.len()];
                [parent, prev, next]
            }
        }
    }

    /// Whether `node` still receives a usable pulse.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn is_clocked(&self, node: NodeId) -> bool {
        self.clocked[node.index()]
    }

    /// Number of *distinct* upstream pulse sources feeding `node` (0 for
    /// the root, 2 on a binary tree, 3 on wider fan-ins).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn redundancy(&self, node: NodeId) -> usize {
        usize::from(self.redundancy[node.index()])
    }

    /// Nodes left without a usable pulse (empty for a fault-free build).
    #[must_use]
    pub fn unclocked(&self, tree: &TreeTopology) -> Vec<NodeId> {
        tree.routers()
            .chain(tree.leaves())
            .filter(|n| !self.clocked[n.index()])
            .collect()
    }

    /// Whether a single `dead` node silences only itself: every *other*
    /// node keeps capturing off the surviving relay pulses. This is the
    /// TRIX claim the head-to-head experiment measures — under the
    /// forwarded scheme the same outage freezes the node's whole subtree.
    #[must_use]
    pub fn survives_single_outage(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
        dead: NodeId,
    ) -> bool {
        let degraded = Self::degraded(tree, plan, wire, frequency, &[dead]);
        degraded.unclocked(tree) == vec![dead]
    }
}

impl ClockDistribution for RedundantPulseClock {
    fn backend(&self) -> ClockBackend {
        ClockBackend::Redundant
    }

    fn frequency(&self) -> Gigahertz {
        self.frequency
    }

    fn arrivals(&self) -> &[Picoseconds] {
        &self.arrival
    }

    fn polarities(&self) -> &[ClockPolarity] {
        &self.polarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ClockScheme, ForwardedClock};
    use icnoc_units::Millimeters;
    use proptest::prelude::*;

    fn placed(ports: usize) -> (TreeTopology, Floorplan) {
        let tree = TreeTopology::binary(ports).expect("valid");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        (tree, plan)
    }

    fn wire() -> WireModel {
        WireModel::nominal_90nm()
    }

    #[test]
    fn fault_free_build_clocks_everyone_with_alternating_edges() {
        let (tree, plan) = placed(64);
        let dist = RedundantPulseClock::new(&tree, &plan, wire(), Gigahertz::new(1.0));
        assert!(dist.unclocked(&tree).is_empty());
        assert!(dist.alternation_holds(&tree));
        assert_eq!(dist.backend(), ClockBackend::Redundant);
        assert_eq!(dist.redundancy(tree.root()), 0);
        for node in tree.routers().chain(tree.leaves()) {
            if node != tree.root() {
                assert!(dist.redundancy(node) >= 1, "node {node}");
            }
        }
    }

    #[test]
    fn voter_delay_is_the_only_extra_skew_per_level() {
        // On the symmetric h-tree every relay arrives with its parent, so
        // the median equals the forwarded arrival plus one voter delay per
        // level below the root.
        let (tree, plan) = placed(64);
        let fwd = ForwardedClock::new(&tree, &plan, wire(), Gigahertz::new(1.0));
        let red = RedundantPulseClock::new(&tree, &plan, wire(), Gigahertz::new(1.0));
        for node in tree.routers().chain(tree.leaves()) {
            let levels = f64::from(tree.node_depth(node));
            let expected = fwd.arrival(node) + Picoseconds::new(levels * VOTER_DELAY_PS);
            let got = red.arrival(node);
            assert!(
                (got.value() - expected.value()).abs() < 1e-9,
                "node {node}: {got:?} vs {expected:?}"
            );
        }
        assert_eq!(
            red.max_link_skew(&tree),
            fwd.max_link_skew(&tree) + voter_delay()
        );
    }

    #[test]
    fn single_outage_orphans_only_the_dead_node() {
        let (tree, plan) = placed(64);
        for node in tree.routers().chain(tree.leaves()) {
            if node == tree.root() {
                continue;
            }
            assert!(
                RedundantPulseClock::survives_single_outage(
                    &tree,
                    &plan,
                    wire(),
                    Gigahertz::new(1.0),
                    node
                ),
                "outage of {node} should be masked"
            );
        }
    }

    #[test]
    fn forwarded_scheme_loses_the_whole_subtree_by_contrast() {
        // The baseline has exactly one pulse path, so killing a router's
        // clock (modeled here as discarding its subtree's arrivals) stalls
        // every descendant — precisely what the sim-side quarantine models.
        let (tree, plan) = placed(64);
        let victim = tree.children(tree.root())[0];
        let degraded =
            RedundantPulseClock::degraded(&tree, &plan, wire(), Gigahertz::new(1.0), &[victim]);
        // Redundant: only the victim is dark; its children ride the relays.
        assert_eq!(degraded.unclocked(&tree), vec![victim]);
        for &child in tree.children(victim) {
            assert!(degraded.is_clocked(child));
            assert!(degraded.arrival(child) > Picoseconds::ZERO);
        }
    }

    #[test]
    fn killing_every_source_does_orphan_a_node() {
        // Both distinct sources of a binary node dead -> the node (and by
        // induction its subtree) has no pulse; the scheme is honest about
        // where its redundancy ends.
        let (tree, plan) = placed(64);
        let parent = tree.children(tree.root())[0];
        let uncle = tree.children(tree.root())[1];
        let degraded = RedundantPulseClock::degraded(
            &tree,
            &plan,
            wire(),
            Gigahertz::new(1.0),
            &[parent, uncle],
        );
        let dark = degraded.unclocked(&tree);
        assert!(dark.len() > 2, "children below the cut must go dark too");
        for &child in tree.children(parent) {
            assert!(!degraded.is_clocked(child));
        }
    }

    #[test]
    fn scheme_dispatch_matches_direct_construction() {
        let (tree, plan) = placed(16);
        let via_scheme = ClockScheme::redundant(&tree, &plan, wire(), Gigahertz::new(1.0));
        let direct = RedundantPulseClock::new(&tree, &plan, wire(), Gigahertz::new(1.0));
        assert_eq!(via_scheme.arrivals(), direct.arrivals());
        assert_eq!(via_scheme.backend(), ClockBackend::Redundant);
    }

    proptest! {
        /// Alternation and monotone arrival hold at every size, and on the
        /// quad tree each non-root-child node really has 3 distinct sources.
        #[test]
        fn redundancy_holds_at_any_size(depth in 1u32..8) {
            let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            let dist = RedundantPulseClock::new(
                &tree, &plan, WireModel::nominal_90nm(), Gigahertz::new(1.0),
            );
            prop_assert!(dist.alternation_holds(&tree));
            prop_assert!(dist.unclocked(&tree).is_empty());
            for link in tree.links() {
                let (child, parent) = tree.link_endpoints(link);
                prop_assert!(dist.arrival(child) > dist.arrival(parent));
            }
        }
    }
}
