//! Weighted skew variation for power-surge spreading (Section 7).
//!
//! Future work in the paper: "by the use of weighted skew variation on
//! links, it is possible to distribute power surge temporally, by making
//! sure that the leaves of the tree are not clocked within close temporal
//! proximity". This module implements that idea: deliberate extra per-leaf
//! clock delay, plus a surge profile that measures the resulting peak
//! current.

use crate::ClockDistribution;
use icnoc_topology::TreeTopology;
use icnoc_units::{Picojoules, Picoseconds};
use serde::{Deserialize, Serialize};

/// A deliberate per-leaf clock-delay assignment spreading leaf edges over a
/// window.
///
/// ```
/// use icnoc_clock::LeafStagger;
/// use icnoc_units::Picoseconds;
///
/// let stagger = LeafStagger::uniform(8, Picoseconds::new(140.0));
/// assert_eq!(stagger.delay(0), Picoseconds::ZERO);
/// assert_eq!(stagger.delay(7), Picoseconds::new(140.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafStagger {
    delays: Vec<Picoseconds>,
}

impl LeafStagger {
    /// No staggering: all leaves keep their natural clock arrival.
    #[must_use]
    pub fn none(leaves: usize) -> Self {
        Self {
            delays: vec![Picoseconds::ZERO; leaves],
        }
    }

    /// Spreads `leaves` uniformly over `window`: leaf `i` is delayed by
    /// `i · window / (leaves − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is negative.
    #[must_use]
    #[track_caller]
    pub fn uniform(leaves: usize, window: Picoseconds) -> Self {
        assert!(!window.is_negative(), "stagger window must be >= 0");
        if leaves <= 1 {
            return Self::none(leaves);
        }
        let step = window / (leaves - 1) as f64;
        Self {
            delays: (0..leaves).map(|i| step * i as f64).collect(),
        }
    }

    /// Number of leaves covered.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.delays.len()
    }

    /// Extra clock delay of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn delay(&self, i: usize) -> Picoseconds {
        self.delays[i]
    }

    /// Effective leaf clock-edge times: natural forwarded-clock arrival
    /// plus the stagger, one entry per port.
    ///
    /// # Panics
    ///
    /// Panics if the stagger covers a different number of leaves than
    /// `tree` has ports.
    #[must_use]
    pub fn leaf_edge_times(
        &self,
        tree: &TreeTopology,
        clocks: &dyn ClockDistribution,
    ) -> Vec<Picoseconds> {
        assert_eq!(
            self.leaves(),
            tree.num_ports(),
            "stagger must cover every leaf"
        );
        tree.leaves()
            .enumerate()
            .map(|(i, leaf)| clocks.arrival(leaf) + self.delays[i])
            .collect()
    }
}

/// A histogram of switching charge over one clock period, yielding the peak
/// supply-current estimate the staggering is meant to reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeProfile {
    bin_charge: Vec<f64>,
    bin_width: Picoseconds,
}

impl SurgeProfile {
    /// Bins each leaf's clock edge (time modulo `period`) into `bins`
    /// buckets, depositing `energy_per_leaf` of switching energy (at 1 V,
    /// numerically equal to charge in pC) per edge.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `period` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn from_edge_times(
        edge_times: &[Picoseconds],
        energy_per_leaf: Picojoules,
        period: Picoseconds,
        bins: usize,
    ) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(period.value() > 0.0, "period must be positive");
        let mut bin_charge = vec![0.0; bins];
        for &t in edge_times {
            let phase = t.value().rem_euclid(period.value()) / period.value();
            let mut idx = (phase * bins as f64) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            bin_charge[idx] += energy_per_leaf.value();
        }
        Self {
            bin_charge,
            bin_width: period / bins as f64,
        }
    }

    /// Charge deposited per bin (pC at 1 V).
    #[must_use]
    pub fn bin_charge(&self) -> &[f64] {
        &self.bin_charge
    }

    /// Peak instantaneous current estimate: the largest bin charge divided
    /// by the bin width — in pC/ps = amperes.
    #[must_use]
    pub fn peak_current_amps(&self) -> f64 {
        let peak = self.bin_charge.iter().copied().fold(0.0, f64::max);
        peak / self.bin_width.value()
    }

    /// Ratio of this profile's peak to another's — e.g. staggered vs
    /// aligned. Below 1.0 means this profile has the lower surge.
    #[must_use]
    pub fn peak_ratio_vs(&self, other: &SurgeProfile) -> f64 {
        self.peak_current_amps() / other.peak_current_amps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icnoc_timing::WireModel;
    use icnoc_topology::Floorplan;
    use icnoc_units::{Gigahertz, Millimeters};
    use proptest::prelude::*;

    fn edges(stagger: &LeafStagger) -> Vec<Picoseconds> {
        let tree = TreeTopology::binary(stagger.leaves()).expect("power of 2");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        let clocks = crate::ClockScheme::forwarded(
            &tree,
            &plan,
            WireModel::nominal_90nm(),
            Gigahertz::new(1.0),
        );
        stagger.leaf_edge_times(&tree, &clocks)
    }

    #[test]
    fn uniform_stagger_spans_the_window() {
        let s = LeafStagger::uniform(64, Picoseconds::new(630.0));
        assert_eq!(s.delay(0), Picoseconds::ZERO);
        assert_eq!(s.delay(63), Picoseconds::new(630.0));
        assert!(s.delay(31) < s.delay(32));
    }

    #[test]
    fn single_leaf_cannot_be_staggered() {
        let s = LeafStagger::uniform(1, Picoseconds::new(100.0));
        assert_eq!(s.delay(0), Picoseconds::ZERO);
    }

    #[test]
    fn aligned_edges_concentrate_charge() {
        let times = vec![Picoseconds::ZERO; 64];
        let profile = SurgeProfile::from_edge_times(
            &times,
            Picojoules::new(1.0),
            Picoseconds::new(1000.0),
            20,
        );
        // All 64 pC land in one 50 ps bin: 1.28 A.
        assert!((profile.peak_current_amps() - 64.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn staggering_reduces_peak_current() {
        // The headline claim of Section 7's third extension.
        let aligned = SurgeProfile::from_edge_times(
            &edges(&LeafStagger::none(64)),
            Picojoules::new(1.0),
            Picoseconds::new(1000.0),
            20,
        );
        let staggered = SurgeProfile::from_edge_times(
            &edges(&LeafStagger::uniform(64, Picoseconds::new(900.0))),
            Picojoules::new(1.0),
            Picoseconds::new(1000.0),
            20,
        );
        let ratio = staggered.peak_ratio_vs(&aligned);
        assert!(ratio < 0.8, "stagger should cut the peak, ratio {ratio}");
    }

    #[test]
    fn edge_times_include_natural_arrival() {
        let e = edges(&LeafStagger::none(64));
        assert_eq!(e.len(), 64);
        // Forwarded clock arrival is never zero at a leaf.
        assert!(e.iter().all(|t| t.value() > 0.0));
    }

    proptest! {
        #[test]
        fn total_charge_is_conserved(leaves in 2usize..128, bins in 1usize..64) {
            let times: Vec<Picoseconds> = (0..leaves)
                .map(|i| Picoseconds::new(i as f64 * 13.7))
                .collect();
            let profile = SurgeProfile::from_edge_times(
                &times, Picojoules::new(0.5), Picoseconds::new(1000.0), bins,
            );
            let total: f64 = profile.bin_charge().iter().sum();
            prop_assert!((total - 0.5 * leaves as f64).abs() < 1e-9);
        }

        /// Fully aligned edges are the worst case: no stagger assignment
        /// can produce a higher peak than all leaves switching in one bin.
        #[test]
        fn no_stagger_exceeds_the_aligned_peak(
            leaves in 2usize..128, w in 0.0f64..2000.0, bins in 1usize..64
        ) {
            let period = Picoseconds::new(1000.0);
            let aligned = SurgeProfile::from_edge_times(
                &vec![Picoseconds::ZERO; leaves],
                Picojoules::new(1.0), period, bins,
            );
            let stagger = LeafStagger::uniform(leaves, Picoseconds::new(w));
            let times: Vec<Picoseconds> =
                (0..leaves).map(|i| stagger.delay(i)).collect();
            let spread = SurgeProfile::from_edge_times(
                &times, Picojoules::new(1.0), period, bins,
            );
            prop_assert!(
                spread.peak_current_amps() <= aligned.peak_current_amps() + 1e-9
            );
        }
    }
}
