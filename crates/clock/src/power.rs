//! Dynamic power of the clock network.

use icnoc_timing::WireModel;
use icnoc_units::{Gigahertz, Millimeters, Milliwatts, Picofarads, Picojoules};
use serde::{Deserialize, Serialize};

/// Dynamic-power model for clock wires and register clock pins.
///
/// Clock nets toggle on **both** edges (two transitions per cycle), so a net
/// of capacitance `C` dissipates `C·V²·f`. Register clock pins behind a
/// clock gate stop toggling when the stage is gated, which is how the
/// Section 5 flow control converts idleness into power savings.
///
/// ```
/// use icnoc_clock::ClockPowerModel;
/// use icnoc_timing::WireModel;
/// use icnoc_units::{Gigahertz, Millimeters};
///
/// let model = ClockPowerModel::nominal_90nm();
/// let p = model.wire_power(Millimeters::new(10.0), Gigahertz::new(1.0));
/// // 10 mm × 0.2 pF/mm × 1 V² × 1 GHz = 2 mW
/// assert!((p.value() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockPowerModel {
    wire: WireModel,
    vdd: f64,
    register_pin_cap: Picofarads,
}

impl ClockPowerModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is negative or `register_pin_cap` is negative.
    #[must_use]
    #[track_caller]
    pub fn new(wire: WireModel, vdd: f64, register_pin_cap: Picofarads) -> Self {
        assert!(vdd >= 0.0, "supply voltage must be >= 0");
        assert!(
            !register_pin_cap.is_negative(),
            "register pin capacitance must be >= 0"
        );
        Self {
            wire,
            vdd,
            register_pin_cap,
        }
    }

    /// The paper's operating point: nominal 90 nm wire, 1 V supply, and a
    /// 2 fF flip-flop clock-pin capacitance (typical for a 90 nm standard
    /// cell).
    #[must_use]
    pub fn nominal_90nm() -> Self {
        Self::new(WireModel::nominal_90nm(), 1.0, Picofarads::new(0.002))
    }

    /// Supply voltage.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The wire model in use.
    #[must_use]
    pub fn wire(&self) -> WireModel {
        self.wire
    }

    /// Energy per clock **cycle** of a clock wire of the given length
    /// (two transitions): `C·V²`.
    #[must_use]
    pub fn wire_energy_per_cycle(&self, length: Millimeters) -> Picojoules {
        // switching_energy is ½CV² per transition; a clock makes two.
        self.wire.switching_energy(length, self.vdd) * 2.0
    }

    /// Average power of a clock wire at frequency `f`: `C·V²·f`.
    #[must_use]
    pub fn wire_power(&self, length: Millimeters, f: Gigahertz) -> Milliwatts {
        self.wire_energy_per_cycle(length).at_rate(f, 1.0)
    }

    /// Average power of `registers` clock pins at frequency `f`, when only
    /// `active_fraction` of edges are enabled (clock-gated otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `active_fraction` is outside `[0, 1]`.
    #[must_use]
    #[track_caller]
    pub fn register_power(
        &self,
        registers: usize,
        f: Gigahertz,
        active_fraction: f64,
    ) -> Milliwatts {
        assert!(
            (0.0..=1.0).contains(&active_fraction),
            "active fraction must be in [0, 1]"
        );
        let cap = self.register_pin_cap.value() * registers as f64;
        let energy_per_cycle = Picojoules::new(cap * self.vdd * self.vdd); // C·V² (two edges)
        energy_per_cycle.at_rate(f, active_fraction)
    }

    /// Total clock power of a network with the given total clock wire
    /// length and register count.
    ///
    /// # Panics
    ///
    /// Panics if `active_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn network_power(
        &self,
        total_wire: Millimeters,
        registers: usize,
        f: Gigahertz,
        active_fraction: f64,
    ) -> Milliwatts {
        self.wire_power(total_wire, f) + self.register_power(registers, f, active_fraction)
    }
}

impl Default for ClockPowerModel {
    /// Defaults to the paper's 90 nm / 1 V operating point.
    fn default() -> Self {
        Self::nominal_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wire_power_formula() {
        let m = ClockPowerModel::nominal_90nm();
        // 1 mm: C = 0.2 pF, CV²f at 1 GHz = 0.2 mW.
        let p = m.wire_power(Millimeters::new(1.0), Gigahertz::new(1.0));
        assert!((p.value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fully_gated_registers_draw_nothing() {
        let m = ClockPowerModel::nominal_90nm();
        assert_eq!(
            m.register_power(10_000, Gigahertz::new(1.0), 0.0),
            Milliwatts::ZERO
        );
    }

    #[test]
    fn register_power_scales_with_count_and_activity() {
        let m = ClockPowerModel::nominal_90nm();
        let full = m.register_power(1000, Gigahertz::new(1.0), 1.0);
        // 1000 × 2 fF × 1 V² × 1 GHz = 2 mW
        assert!((full.value() - 2.0).abs() < 1e-12);
        let half = m.register_power(1000, Gigahertz::new(1.0), 0.5);
        assert!((half.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "active fraction")]
    fn activity_above_one_rejected() {
        let m = ClockPowerModel::nominal_90nm();
        let _ = m.register_power(1, Gigahertz::new(1.0), 1.5);
    }

    proptest! {
        #[test]
        fn network_power_is_sum_of_parts(
            wire in 0.0f64..100.0, regs in 0usize..100_000,
            f in 0.1f64..3.0, act in 0.0f64..1.0
        ) {
            let m = ClockPowerModel::nominal_90nm();
            let total = m.network_power(
                Millimeters::new(wire), regs, Gigahertz::new(f), act,
            );
            let parts = m.wire_power(Millimeters::new(wire), Gigahertz::new(f))
                + m.register_power(regs, Gigahertz::new(f), act);
            prop_assert!((total.value() - parts.value()).abs() < 1e-9);
        }

        #[test]
        fn power_monotone_in_frequency(
            f1 in 0.1f64..3.0, extra in 0.01f64..2.0
        ) {
            let m = ClockPowerModel::nominal_90nm();
            let lo = m.network_power(Millimeters::new(10.0), 1000, Gigahertz::new(f1), 0.5);
            let hi = m.network_power(
                Millimeters::new(10.0), 1000, Gigahertz::new(f1 + extra), 0.5,
            );
            prop_assert!(hi > lo);
        }
    }
}
