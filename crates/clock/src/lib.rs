//! Integrated clock distribution for the IC-NoC.
//!
//! The defining idea of the paper is that the clock is **forwarded along the
//! branches of the NoC tree** — inverted at every link (Fig. 6) so that
//! adjacent nodes are clocked on alternating edges — instead of being
//! balanced across the die by a power-hungry global tree. This crate models
//! that scheme and its alternatives:
//!
//! * [`ClockDistribution`] — the backend trait: per-node clock arrival
//!   times and [`ClockPolarity`] for a placed tree. The default
//!   [`ForwardedClock`] backend forwards one pulse per branch — the skew
//!   between any two *communicating* nodes equals the wire delay of their
//!   shared branch, which is exactly what makes the Section 4 timing
//!   analysis local and the system scalable. The [`RedundantPulseClock`]
//!   backend triplicates the pulse paths TRIX-style so a single clock-node
//!   outage never silences a subtree; [`ClockScheme`] is the concrete sum
//!   type a built system stores, selected by [`ClockBackend`];
//! * [`ClockGatingStats`] — accounting of enabled vs gated register edges,
//!   the "fine-grained clock gating" that falls out of the flow-control
//!   scheme (Section 5);
//! * [`ClockPowerModel`] — dynamic power of the clock network, used to
//!   compare the forwarded clock against a skew-balanced
//!   [`GlobalClockTree`] baseline (Section 2's motivation);
//! * [`LeafStagger`] — the Section 7 future-work idea of weighting link
//!   skews so leaves do not all clock within close temporal proximity,
//!   spreading the power surge.
//!
//! # Example
//!
//! ```
//! use icnoc_clock::{ClockBackend, ClockDistribution, ClockPolarity, ClockScheme};
//! use icnoc_timing::WireModel;
//! use icnoc_topology::{Floorplan, TreeTopology};
//! use icnoc_units::{Gigahertz, Millimeters};
//!
//! let tree = TreeTopology::binary(64)?;
//! let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
//! let clocks = ClockScheme::build(ClockBackend::Forwarded, &tree, &plan,
//!                                 WireModel::nominal_90nm(), Gigahertz::new(1.0));
//! // The root is posedge-clocked; its children negedge (alternating edges).
//! assert_eq!(clocks.polarity(tree.root()), ClockPolarity::Rising);
//! let child = tree.children(tree.root())[0];
//! assert_eq!(clocks.polarity(child), ClockPolarity::Falling);
//! # Ok::<(), icnoc_topology::TopologyError>(())
//! ```

#![warn(missing_docs)]

mod distribution;
mod gating;
mod global;
mod power;
mod redundant;
mod stagger;

pub use distribution::{
    ClockBackend, ClockDistribution, ClockPolarity, ClockScheme, ForwardedClock,
};
pub use gating::ClockGatingStats;
pub use global::GlobalClockTree;
pub use power::ClockPowerModel;
pub use redundant::{RedundantPulseClock, VOTER_DELAY_PS};
pub use stagger::{LeafStagger, SurgeProfile};
