//! Clock-distribution backends behind the [`ClockDistribution`] trait.
//!
//! The paper's forwarded clock ([`ForwardedClock`]) is the default backend;
//! a TRIX-style redundant-pulse scheme ([`RedundantPulseClock`]) is the
//! fault-tolerant alternative. [`ClockScheme`] is the concrete sum type the
//! rest of the system stores.
//!
//! [`RedundantPulseClock`]: crate::RedundantPulseClock

use crate::redundant::RedundantPulseClock;
use icnoc_timing::WireModel;
use icnoc_topology::{Floorplan, LinkId, NodeId, TreeTopology};
use icnoc_units::{Gigahertz, Picoseconds};
use serde::{Deserialize, Serialize};

/// Which clock edge triggers a node's registers.
///
/// The clock is inverted as it is forwarded on every link (paper Fig. 6),
/// so polarity alternates along each branch — the mechanism behind the
/// 2-phase handshake of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockPolarity {
    /// Triggered by the rising edge.
    Rising,
    /// Triggered by the falling edge.
    Falling,
}

impl ClockPolarity {
    /// The opposite polarity — what a signal sees after one link inversion.
    #[must_use]
    pub fn inverted(self) -> Self {
        match self {
            ClockPolarity::Rising => ClockPolarity::Falling,
            ClockPolarity::Falling => ClockPolarity::Rising,
        }
    }
}

impl core::fmt::Display for ClockPolarity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClockPolarity::Rising => f.write_str("rising"),
            ClockPolarity::Falling => f.write_str("falling"),
        }
    }
}

/// Which clock-distribution backend a system is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ClockBackend {
    /// The paper's forwarded clock: one pulse path per node, along the
    /// data branches, inverted per link.
    #[default]
    Forwarded,
    /// TRIX-style redundant pulses: each node takes the median of 3
    /// upstream arrivals and survives a single upstream outage.
    Redundant,
}

impl ClockBackend {
    /// Every backend, in canonical (CLI / cache-key) order.
    pub const ALL: [ClockBackend; 2] = [ClockBackend::Forwarded, ClockBackend::Redundant];

    /// Stable lower-case label, used in CLI flags and cache keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClockBackend::Forwarded => "forwarded",
            ClockBackend::Redundant => "redundant",
        }
    }

    /// Parses a CLI/grid label; the error names every valid backend.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known backends when `label` matches
    /// none of them.
    pub fn parse(label: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|b| b.label() == label)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|b| b.label()).collect();
                format!(
                    "unknown clock backend {label:?}; known: {}",
                    known.join(", ")
                )
            })
    }
}

impl core::fmt::Display for ClockBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A placed clock distribution: per-node arrival times and polarities.
///
/// Implemented by every backend ([`ForwardedClock`], [`RedundantPulseClock`]
/// and the [`ClockScheme`] sum type). The skew/polarity queries are provided
/// methods over the two dense per-node tables, so the timing analysis is
/// backend-agnostic.
///
/// [`RedundantPulseClock`]: crate::RedundantPulseClock
pub trait ClockDistribution {
    /// Which backend produced this distribution.
    fn backend(&self) -> ClockBackend;

    /// The distributed clock frequency.
    fn frequency(&self) -> Gigahertz;

    /// Clock arrival time per node index, measured from the root's edge.
    fn arrivals(&self) -> &[Picoseconds];

    /// Triggering edge per node index.
    fn polarities(&self) -> &[ClockPolarity];

    /// Clock arrival time at `node`, measured from the root's edge.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn arrival(&self, node: NodeId) -> Picoseconds {
        self.arrivals()[node.index()]
    }

    /// Triggering edge of `node`'s registers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn polarity(&self, node: NodeId) -> ClockPolarity {
        self.polarities()[node.index()]
    }

    /// Local skew across a link: the clock delay between its endpoints
    /// (always ≥ 0: the child's clock lags the parent's on every backend).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    fn link_skew(&self, tree: &TreeTopology, link: LinkId) -> Picoseconds {
        let (child, parent) = tree.link_endpoints(link);
        self.arrivals()[child.index()] - self.arrivals()[parent.index()]
    }

    /// Largest local (link) skew in the network — the quantity the timing
    /// analysis must absorb.
    fn max_link_skew(&self, tree: &TreeTopology) -> Picoseconds {
        tree.links()
            .map(|l| self.link_skew(tree, l))
            .fold(Picoseconds::ZERO, Picoseconds::max)
    }

    /// Largest *global* skew — between the root and the latest leaf. Grows
    /// with the die; harmless because the IC-NoC never compares clocks of
    /// non-adjacent nodes.
    fn max_global_skew(&self) -> Picoseconds {
        self.arrivals()
            .iter()
            .copied()
            .fold(Picoseconds::ZERO, Picoseconds::max)
    }

    /// Checks the alternating-edge invariant: every link joins nodes of
    /// opposite polarity. Both backends keep depth-parity polarity, so this
    /// holds by construction; exposed so system-level verification can
    /// assert it.
    fn alternation_holds(&self, tree: &TreeTopology) -> bool {
        tree.links().all(|l| {
            let (child, parent) = tree.link_endpoints(l);
            self.polarities()[child.index()] == self.polarities()[parent.index()].inverted()
        })
    }
}

/// Per-node clock arrival times and polarities for a placed tree, under the
/// paper's forwarded-clock scheme.
///
/// The clock enters at the root and travels down every branch on the same
/// wires (lengths) the data uses, so:
///
/// * the *local* skew between a parent and child is exactly the link's wire
///   delay — bounded and correlated with the data delay, which is what the
///   Section 4 analysis exploits;
/// * the *global* skew between distant leaves grows with tree depth, but —
///   the scalability argument — never needs to be controlled, because no
///   two nodes communicate except along branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardedClock {
    frequency: Gigahertz,
    arrival: Vec<Picoseconds>,
    polarity: Vec<ClockPolarity>,
}

impl ForwardedClock {
    /// Propagates the clock from the root along every branch of `tree`,
    /// accumulating `wire` delay over the floorplanned link lengths and
    /// inverting polarity per link.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn new(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        assert!(frequency.value() > 0.0, "clock must run");
        let n = tree.node_count();
        let mut arrival = vec![Picoseconds::ZERO; n];
        let mut polarity = vec![ClockPolarity::Rising; n];
        // BFS from the root; parents are always visited first.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.root());
        while let Some(node) = queue.pop_front() {
            for &child in tree.children(node) {
                let link = tree.uplink(child).expect("children are non-root");
                arrival[child.index()] = arrival[node.index()] + wire.delay(plan.link_length(link));
                polarity[child.index()] = polarity[node.index()].inverted();
                queue.push_back(child);
            }
        }
        Self {
            frequency,
            arrival,
            polarity,
        }
    }
}

impl ClockDistribution for ForwardedClock {
    fn backend(&self) -> ClockBackend {
        ClockBackend::Forwarded
    }

    fn frequency(&self) -> Gigahertz {
        self.frequency
    }

    fn arrivals(&self) -> &[Picoseconds] {
        &self.arrival
    }

    fn polarities(&self) -> &[ClockPolarity] {
        &self.polarity
    }
}

/// The concrete clock distribution a built system stores: one of the
/// [`ClockBackend`]s, dispatching the [`ClockDistribution`] queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClockScheme {
    /// The paper's forwarded clock.
    Forwarded(ForwardedClock),
    /// TRIX-style redundant pulses.
    Redundant(RedundantPulseClock),
}

impl ClockScheme {
    /// Builds the requested backend over a placed tree.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn build(
        backend: ClockBackend,
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        match backend {
            ClockBackend::Forwarded => Self::forwarded(tree, plan, wire, frequency),
            ClockBackend::Redundant => Self::redundant(tree, plan, wire, frequency),
        }
    }

    /// Shorthand for [`ClockScheme::build`] with [`ClockBackend::Forwarded`].
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn forwarded(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        ClockScheme::Forwarded(ForwardedClock::new(tree, plan, wire, frequency))
    }

    /// Shorthand for [`ClockScheme::build`] with [`ClockBackend::Redundant`].
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn redundant(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        ClockScheme::Redundant(RedundantPulseClock::new(tree, plan, wire, frequency))
    }
}

impl ClockDistribution for ClockScheme {
    fn backend(&self) -> ClockBackend {
        match self {
            ClockScheme::Forwarded(c) => c.backend(),
            ClockScheme::Redundant(c) => c.backend(),
        }
    }

    fn frequency(&self) -> Gigahertz {
        match self {
            ClockScheme::Forwarded(c) => c.frequency(),
            ClockScheme::Redundant(c) => c.frequency(),
        }
    }

    fn arrivals(&self) -> &[Picoseconds] {
        match self {
            ClockScheme::Forwarded(c) => c.arrivals(),
            ClockScheme::Redundant(c) => c.arrivals(),
        }
    }

    fn polarities(&self) -> &[ClockPolarity] {
        match self {
            ClockScheme::Forwarded(c) => c.polarities(),
            ClockScheme::Redundant(c) => c.polarities(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icnoc_units::Millimeters;
    use proptest::prelude::*;

    fn demo() -> (TreeTopology, Floorplan, ClockScheme) {
        let tree = TreeTopology::binary(64).expect("valid");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        let dist =
            ClockScheme::forwarded(&tree, &plan, WireModel::nominal_90nm(), Gigahertz::new(1.0));
        (tree, plan, dist)
    }

    #[test]
    fn root_is_time_zero_rising() {
        let (tree, _, dist) = demo();
        assert_eq!(dist.arrival(tree.root()), Picoseconds::ZERO);
        assert_eq!(dist.polarity(tree.root()), ClockPolarity::Rising);
        assert_eq!(dist.backend(), ClockBackend::Forwarded);
    }

    #[test]
    fn polarity_alternates_with_depth() {
        let (tree, _, dist) = demo();
        for node in tree.routers().chain(tree.leaves()) {
            let expected = if tree.node_depth(node) % 2 == 0 {
                ClockPolarity::Rising
            } else {
                ClockPolarity::Falling
            };
            assert_eq!(dist.polarity(node), expected, "node {node}");
        }
        assert!(dist.alternation_holds(&tree));
    }

    #[test]
    fn arrival_accumulates_down_branches() {
        let (tree, plan, dist) = demo();
        let wire = WireModel::nominal_90nm();
        for link in tree.links() {
            let (child, parent) = tree.link_endpoints(link);
            let expected = dist.arrival(parent) + wire.delay(plan.link_length(link));
            assert_eq!(dist.arrival(child), expected);
            assert_eq!(
                dist.link_skew(&tree, link),
                wire.delay(plan.link_length(link))
            );
        }
    }

    #[test]
    fn local_skew_is_bounded_by_longest_link() {
        let (tree, plan, dist) = demo();
        let wire = WireModel::nominal_90nm();
        let bound = wire.delay(plan.longest_link_length());
        assert_eq!(dist.max_link_skew(&tree), bound);
        // 2.5 mm root link: 114·2.5 + 30.4·6.25 = 475 ps.
        assert!((bound.value() - 475.0).abs() < 1e-9);
    }

    #[test]
    fn global_skew_exceeds_local_skew() {
        // The whole point: global skew is large (sum over a branch) but
        // only local skew matters.
        let (tree, _, dist) = demo();
        assert!(dist.max_global_skew() > dist.max_link_skew(&tree));
    }

    #[test]
    fn inverted_is_involutive() {
        assert_eq!(
            ClockPolarity::Rising.inverted().inverted(),
            ClockPolarity::Rising
        );
        assert_ne!(ClockPolarity::Rising, ClockPolarity::Falling);
    }

    #[test]
    fn backend_labels_round_trip_and_errors_name_the_valid_set() {
        for backend in ClockBackend::ALL {
            assert_eq!(ClockBackend::parse(backend.label()), Ok(backend));
        }
        assert_eq!(ClockBackend::default(), ClockBackend::Forwarded);
        let err = ClockBackend::parse("gradient").expect_err("unknown backend");
        assert!(err.contains("forwarded"), "{err}");
        assert!(err.contains("redundant"), "{err}");
    }

    #[test]
    fn build_dispatches_on_the_backend() {
        let tree = TreeTopology::binary(16).expect("valid");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        for backend in ClockBackend::ALL {
            let dist = ClockScheme::build(
                backend,
                &tree,
                &plan,
                WireModel::nominal_90nm(),
                Gigahertz::new(1.0),
            );
            assert_eq!(dist.backend(), backend);
            assert!(dist.alternation_holds(&tree));
        }
    }

    proptest! {
        /// Scalability: growing the tree never changes the *local* skew
        /// profile of the shared upper levels, and alternation always holds.
        #[test]
        fn alternation_and_monotone_arrival(depth in 1u32..8) {
            let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            let dist = ClockScheme::forwarded(
                &tree, &plan, WireModel::nominal_90nm(), Gigahertz::new(1.0),
            );
            prop_assert!(dist.alternation_holds(&tree));
            for link in tree.links() {
                let (child, parent) = tree.link_endpoints(link);
                prop_assert!(dist.arrival(child) > dist.arrival(parent));
            }
        }
    }
}
