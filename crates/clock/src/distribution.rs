//! Forwarded-clock distribution along the tree branches.

use icnoc_timing::WireModel;
use icnoc_topology::{Floorplan, LinkId, NodeId, TreeTopology};
use icnoc_units::{Gigahertz, Picoseconds};
use serde::{Deserialize, Serialize};

/// Which clock edge triggers a node's registers.
///
/// The clock is inverted as it is forwarded on every link (paper Fig. 6),
/// so polarity alternates along each branch — the mechanism behind the
/// 2-phase handshake of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockPolarity {
    /// Triggered by the rising edge.
    Rising,
    /// Triggered by the falling edge.
    Falling,
}

impl ClockPolarity {
    /// The opposite polarity — what a signal sees after one link inversion.
    #[must_use]
    pub fn inverted(self) -> Self {
        match self {
            ClockPolarity::Rising => ClockPolarity::Falling,
            ClockPolarity::Falling => ClockPolarity::Rising,
        }
    }
}

impl core::fmt::Display for ClockPolarity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClockPolarity::Rising => f.write_str("rising"),
            ClockPolarity::Falling => f.write_str("falling"),
        }
    }
}

/// Per-node clock arrival times and polarities for a placed tree, under the
/// paper's forwarded-clock scheme.
///
/// The clock enters at the root and travels down every branch on the same
/// wires (lengths) the data uses, so:
///
/// * the *local* skew between a parent and child is exactly the link's wire
///   delay — bounded and correlated with the data delay, which is what the
///   Section 4 analysis exploits;
/// * the *global* skew between distant leaves grows with tree depth, but —
///   the scalability argument — never needs to be controlled, because no
///   two nodes communicate except along branches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockDistribution {
    frequency: Gigahertz,
    arrival: Vec<Picoseconds>,
    polarity: Vec<ClockPolarity>,
}

impl ClockDistribution {
    /// Propagates the clock from the root along every branch of `tree`,
    /// accumulating `wire` delay over the floorplanned link lengths and
    /// inverting polarity per link.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not strictly positive.
    #[must_use]
    #[track_caller]
    pub fn forwarded(
        tree: &TreeTopology,
        plan: &Floorplan,
        wire: WireModel,
        frequency: Gigahertz,
    ) -> Self {
        assert!(frequency.value() > 0.0, "clock must run");
        let n = tree.node_count();
        let mut arrival = vec![Picoseconds::ZERO; n];
        let mut polarity = vec![ClockPolarity::Rising; n];
        // BFS from the root; parents are always visited first.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.root());
        while let Some(node) = queue.pop_front() {
            for &child in tree.children(node) {
                let link = tree.uplink(child).expect("children are non-root");
                arrival[child.index()] = arrival[node.index()] + wire.delay(plan.link_length(link));
                polarity[child.index()] = polarity[node.index()].inverted();
                queue.push_back(child);
            }
        }
        Self {
            frequency,
            arrival,
            polarity,
        }
    }

    /// The distributed clock frequency.
    #[must_use]
    pub fn frequency(&self) -> Gigahertz {
        self.frequency
    }

    /// Clock arrival time at `node`, measured from the root's edge.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn arrival(&self, node: NodeId) -> Picoseconds {
        self.arrival[node.index()]
    }

    /// Triggering edge of `node`'s registers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn polarity(&self, node: NodeId) -> ClockPolarity {
        self.polarity[node.index()]
    }

    /// Local skew across a link: the clock wire delay between its endpoints
    /// (always ≥ 0: the child's clock lags the parent's).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link_skew(&self, tree: &TreeTopology, link: LinkId) -> Picoseconds {
        let (child, parent) = tree.link_endpoints(link);
        self.arrival[child.index()] - self.arrival[parent.index()]
    }

    /// Largest local (link) skew in the network — the quantity the timing
    /// analysis must absorb.
    #[must_use]
    pub fn max_link_skew(&self, tree: &TreeTopology) -> Picoseconds {
        tree.links()
            .map(|l| self.link_skew(tree, l))
            .fold(Picoseconds::ZERO, Picoseconds::max)
    }

    /// Largest *global* skew — between the root and the latest leaf. Grows
    /// with the die; harmless because the IC-NoC never compares clocks of
    /// non-adjacent nodes.
    #[must_use]
    pub fn max_global_skew(&self) -> Picoseconds {
        self.arrival
            .iter()
            .copied()
            .fold(Picoseconds::ZERO, Picoseconds::max)
    }

    /// Checks the alternating-edge invariant: every link joins nodes of
    /// opposite polarity. Holds by construction for [`forwarded`]
    /// distributions; exposed so system-level verification can assert it.
    ///
    /// [`forwarded`]: Self::forwarded
    #[must_use]
    pub fn alternation_holds(&self, tree: &TreeTopology) -> bool {
        tree.links().all(|l| {
            let (child, parent) = tree.link_endpoints(l);
            self.polarity[child.index()] == self.polarity[parent.index()].inverted()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icnoc_units::Millimeters;
    use proptest::prelude::*;

    fn demo() -> (TreeTopology, Floorplan, ClockDistribution) {
        let tree = TreeTopology::binary(64).expect("valid");
        let plan = Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
        let dist = ClockDistribution::forwarded(
            &tree,
            &plan,
            WireModel::nominal_90nm(),
            Gigahertz::new(1.0),
        );
        (tree, plan, dist)
    }

    #[test]
    fn root_is_time_zero_rising() {
        let (tree, _, dist) = demo();
        assert_eq!(dist.arrival(tree.root()), Picoseconds::ZERO);
        assert_eq!(dist.polarity(tree.root()), ClockPolarity::Rising);
    }

    #[test]
    fn polarity_alternates_with_depth() {
        let (tree, _, dist) = demo();
        for node in tree.routers().chain(tree.leaves()) {
            let expected = if tree.node_depth(node) % 2 == 0 {
                ClockPolarity::Rising
            } else {
                ClockPolarity::Falling
            };
            assert_eq!(dist.polarity(node), expected, "node {node}");
        }
        assert!(dist.alternation_holds(&tree));
    }

    #[test]
    fn arrival_accumulates_down_branches() {
        let (tree, plan, dist) = demo();
        let wire = WireModel::nominal_90nm();
        for link in tree.links() {
            let (child, parent) = tree.link_endpoints(link);
            let expected = dist.arrival(parent) + wire.delay(plan.link_length(link));
            assert_eq!(dist.arrival(child), expected);
            assert_eq!(
                dist.link_skew(&tree, link),
                wire.delay(plan.link_length(link))
            );
        }
    }

    #[test]
    fn local_skew_is_bounded_by_longest_link() {
        let (tree, plan, dist) = demo();
        let wire = WireModel::nominal_90nm();
        let bound = wire.delay(plan.longest_link_length());
        assert_eq!(dist.max_link_skew(&tree), bound);
        // 2.5 mm root link: 114·2.5 + 30.4·6.25 = 475 ps.
        assert!((bound.value() - 475.0).abs() < 1e-9);
    }

    #[test]
    fn global_skew_exceeds_local_skew() {
        // The whole point: global skew is large (sum over a branch) but
        // only local skew matters.
        let (tree, _, dist) = demo();
        assert!(dist.max_global_skew() > dist.max_link_skew(&tree));
    }

    #[test]
    fn inverted_is_involutive() {
        assert_eq!(
            ClockPolarity::Rising.inverted().inverted(),
            ClockPolarity::Rising
        );
        assert_ne!(ClockPolarity::Rising, ClockPolarity::Falling);
    }

    proptest! {
        /// Scalability: growing the tree never changes the *local* skew
        /// profile of the shared upper levels, and alternation always holds.
        #[test]
        fn alternation_and_monotone_arrival(depth in 1u32..8) {
            let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
            let plan =
                Floorplan::h_tree(&tree, Millimeters::new(10.0), Millimeters::new(10.0));
            let dist = ClockDistribution::forwarded(
                &tree, &plan, WireModel::nominal_90nm(), Gigahertz::new(1.0),
            );
            prop_assert!(dist.alternation_holds(&tree));
            for link in tree.links() {
                let (child, parent) = tree.link_endpoints(link);
                prop_assert!(dist.arrival(child) > dist.arrival(parent));
            }
        }
    }
}
