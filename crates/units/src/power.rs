//! Power and energy quantities, for clock-distribution and gating estimates.

use crate::Gigahertz;

quantity!(
    /// Dynamic power in milliwatts.
    Milliwatts,
    "mW"
);

quantity!(
    /// Dynamic power in microwatts, for per-register gating accounting.
    Microwatts,
    "uW"
);

quantity!(
    /// Switching energy in picojoules (per event).
    ///
    /// `E = C · V²` for a full charge/discharge; at 1 V supply the paper's
    /// 0.2 pF/mm wire burns 0.2 pJ per millimetre per transition.
    ///
    /// ```
    /// use icnoc_units::{Gigahertz, Picojoules};
    ///
    /// // 0.4 pJ toggled every cycle of a 1 GHz clock is 0.4 mW.
    /// let p = Picojoules::new(0.4).at_rate(Gigahertz::new(1.0), 1.0);
    /// assert_eq!(p.value(), 0.4);
    /// ```
    Picojoules,
    "pJ"
);

impl Picojoules {
    /// Average power of this per-event energy at clock `f` with the given
    /// activity factor (events per cycle, 0.0–1.0 for single-edge switching,
    /// up to 2.0 for a clock net toggling on both edges).
    ///
    /// pJ × GHz = mW exactly, which is why these two units were chosen.
    #[must_use]
    pub fn at_rate(self, f: Gigahertz, activity: f64) -> Milliwatts {
        Milliwatts::new(self.value() * f.value() * activity)
    }
}

impl Milliwatts {
    /// Converts to microwatts.
    #[must_use]
    pub fn to_microwatts(self) -> Microwatts {
        Microwatts::new(self.value() * 1000.0)
    }
}

impl Microwatts {
    /// Converts to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts::new(self.value() / 1000.0)
    }
}

impl From<Microwatts> for Milliwatts {
    fn from(p: Microwatts) -> Self {
        p.to_milliwatts()
    }
}

impl From<Milliwatts> for Microwatts {
    fn from(p: Milliwatts) -> Self {
        p.to_microwatts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pj_times_ghz_is_mw() {
        let p = Picojoules::new(2.0).at_rate(Gigahertz::new(1.5), 1.0);
        assert_eq!(p, Milliwatts::new(3.0));
    }

    #[test]
    fn activity_scales_power() {
        let e = Picojoules::new(1.0);
        let f = Gigahertz::new(1.0);
        assert_eq!(e.at_rate(f, 0.0), Milliwatts::ZERO);
        assert_eq!(e.at_rate(f, 2.0), Milliwatts::new(2.0));
    }

    proptest! {
        #[test]
        fn power_round_trip(v in 0.0f64..1e6) {
            let p = Milliwatts::new(v);
            let back = Milliwatts::from(Microwatts::from(p));
            prop_assert!((back.value() - v).abs() <= v * 1e-12 + 1e-12);
        }

        #[test]
        fn power_monotone_in_activity(e in 0.0f64..100.0, f in 0.01f64..10.0,
                                      a1 in 0.0f64..2.0, a2 in 0.0f64..2.0) {
            prop_assume!(a1 <= a2);
            let pj = Picojoules::new(e);
            let g = Gigahertz::new(f);
            prop_assert!(pj.at_rate(g, a1) <= pj.at_rate(g, a2));
        }
    }
}
