//! Length quantities: [`Millimeters`] for wire/die geometry and
//! [`Micrometers`] for fine-grained placement.

quantity!(
    /// A length in millimetres.
    ///
    /// Wire segments, die edges and floorplan coordinates all live in
    /// millimetres: the paper's demonstrator is a 10 mm × 10 mm chip with
    /// link segments of 0.6–1.25 mm.
    ///
    /// ```
    /// use icnoc_units::Millimeters;
    ///
    /// let die_edge = Millimeters::new(10.0);
    /// let segment = die_edge / 8.0;
    /// assert_eq!(segment, Millimeters::new(1.25));
    /// ```
    Millimeters,
    "mm"
);

quantity!(
    /// A length in micrometres, for sub-millimetre placement detail.
    ///
    /// ```
    /// use icnoc_units::{Micrometers, Millimeters};
    ///
    /// assert_eq!(Millimeters::from(Micrometers::new(900.0)), Millimeters::new(0.9));
    /// ```
    Micrometers,
    "um"
);

impl Millimeters {
    /// Converts this length to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers::new(self.value() * 1000.0)
    }

    /// Euclidean distance between two points given as (x, y) pairs.
    ///
    /// ```
    /// use icnoc_units::Millimeters;
    ///
    /// let d = Millimeters::distance(
    ///     (Millimeters::new(0.0), Millimeters::new(0.0)),
    ///     (Millimeters::new(3.0), Millimeters::new(4.0)),
    /// );
    /// assert_eq!(d, Millimeters::new(5.0));
    /// ```
    #[must_use]
    pub fn distance(a: (Self, Self), b: (Self, Self)) -> Self {
        let dx = a.0.value() - b.0.value();
        let dy = a.1.value() - b.1.value();
        Self::new(dx.hypot(dy))
    }

    /// Manhattan (rectilinear) distance between two points, the natural
    /// metric for on-chip routed wires.
    #[must_use]
    pub fn manhattan(a: (Self, Self), b: (Self, Self)) -> Self {
        Self::new((a.0.value() - b.0.value()).abs() + (a.1.value() - b.1.value()).abs())
    }
}

impl Micrometers {
    /// Converts this length to millimetres.
    #[must_use]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters::new(self.value() / 1000.0)
    }
}

impl From<Micrometers> for Millimeters {
    fn from(um: Micrometers) -> Self {
        um.to_millimeters()
    }
}

impl From<Millimeters> for Micrometers {
    fn from(mm: Millimeters) -> Self {
        mm.to_micrometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = (Millimeters::new(1.0), Millimeters::new(2.0));
        let b = (Millimeters::new(4.0), Millimeters::new(6.0));
        assert!(Millimeters::manhattan(a, b) >= Millimeters::distance(a, b));
        assert_eq!(Millimeters::manhattan(a, b), Millimeters::new(7.0));
    }

    #[test]
    fn distance_is_zero_for_identical_points() {
        let p = (Millimeters::new(3.3), Millimeters::new(-1.1));
        assert_eq!(Millimeters::distance(p, p), Millimeters::ZERO);
        assert_eq!(Millimeters::manhattan(p, p), Millimeters::ZERO);
    }

    proptest! {
        #[test]
        fn mm_um_round_trip(v in -1e6f64..1e6) {
            let mm = Millimeters::new(v);
            let back = Millimeters::from(Micrometers::from(mm));
            prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        }

        #[test]
        fn distance_symmetric(ax in -10f64..10.0, ay in -10f64..10.0,
                              bx in -10f64..10.0, by in -10f64..10.0) {
            let a = (Millimeters::new(ax), Millimeters::new(ay));
            let b = (Millimeters::new(bx), Millimeters::new(by));
            prop_assert_eq!(Millimeters::distance(a, b), Millimeters::distance(b, a));
            prop_assert_eq!(Millimeters::manhattan(a, b), Millimeters::manhattan(b, a));
        }

        #[test]
        fn triangle_inequality(ax in -10f64..10.0, ay in -10f64..10.0,
                               bx in -10f64..10.0, by in -10f64..10.0,
                               cx in -10f64..10.0, cy in -10f64..10.0) {
            let a = (Millimeters::new(ax), Millimeters::new(ay));
            let b = (Millimeters::new(bx), Millimeters::new(by));
            let c = (Millimeters::new(cx), Millimeters::new(cy));
            let direct = Millimeters::distance(a, c).value();
            let via = Millimeters::distance(a, b).value() + Millimeters::distance(b, c).value();
            prop_assert!(direct <= via + 1e-9);
        }
    }
}
