//! Time quantities: [`Picoseconds`] (the workhorse of the timing model) and
//! [`Nanoseconds`] for human-scale reporting.

quantity!(
    /// A time span in picoseconds.
    ///
    /// This is the canonical time unit of the whole IC-NoC timing model: the
    /// flip-flop parameters of the paper are given in picoseconds
    /// (`t_setup` = 60 ps, `t_hold` = 20 ps, `t_clk→Q` = 60 ps for the 90 nm
    /// library) and all link-timing slack windows are reported in it.
    ///
    /// ```
    /// use icnoc_units::Picoseconds;
    ///
    /// let setup = Picoseconds::new(60.0);
    /// let clk_to_q = Picoseconds::new(60.0);
    /// assert_eq!((setup + clk_to_q).to_string(), "120 ps");
    /// ```
    Picoseconds,
    "ps"
);

quantity!(
    /// A time span in nanoseconds, for human-scale latency reporting.
    ///
    /// ```
    /// use icnoc_units::{Nanoseconds, Picoseconds};
    ///
    /// let t = Nanoseconds::new(1.5);
    /// assert_eq!(Picoseconds::from(t), Picoseconds::new(1500.0));
    /// ```
    Nanoseconds,
    "ns"
);

impl Picoseconds {
    /// Converts this span to nanoseconds.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.value() / 1000.0)
    }

    /// Positive infinity, used by the timing solvers as "unconstrained".
    pub const INFINITY: Self = Self(f64::INFINITY);

    /// Negative infinity, used as "no lower bound".
    pub const NEG_INFINITY: Self = Self(f64::NEG_INFINITY);
}

impl Nanoseconds {
    /// Converts this span to picoseconds.
    #[must_use]
    pub fn to_picoseconds(self) -> Picoseconds {
        Picoseconds::new(self.value() * 1000.0)
    }
}

impl From<Nanoseconds> for Picoseconds {
    fn from(ns: Nanoseconds) -> Self {
        ns.to_picoseconds()
    }
}

impl From<Picoseconds> for Nanoseconds {
    fn from(ps: Picoseconds) -> Self {
        ps.to_nanoseconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversion_round_trip_exact_cases() {
        assert_eq!(
            Picoseconds::new(1500.0).to_nanoseconds(),
            Nanoseconds::new(1.5)
        );
        assert_eq!(
            Nanoseconds::new(0.25).to_picoseconds(),
            Picoseconds::new(250.0)
        );
    }

    #[test]
    fn infinities_behave_as_unconstrained_bounds() {
        assert!(Picoseconds::new(1e12) < Picoseconds::INFINITY);
        assert!(Picoseconds::NEG_INFINITY < Picoseconds::new(-1e12));
        assert!(!Picoseconds::INFINITY.is_finite());
    }

    proptest! {
        #[test]
        fn ns_ps_round_trip(v in -1e9f64..1e9) {
            let ps = Picoseconds::new(v);
            let back = Picoseconds::from(Nanoseconds::from(ps));
            prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        }

        #[test]
        fn addition_commutes(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let x = Picoseconds::new(a) + Picoseconds::new(b);
            let y = Picoseconds::new(b) + Picoseconds::new(a);
            prop_assert_eq!(x, y);
        }
    }
}
