//! Electrical wire parameters: distributed capacitance and resistance per
//! unit length, as used by the paper's RC wire delay estimates.

use crate::Millimeters;

quantity!(
    /// Distributed wire capacitance in picofarads per millimetre.
    ///
    /// The paper quotes `0.2 pF/mm` for the target 90 nm technology.
    ///
    /// ```
    /// use icnoc_units::{Millimeters, PicofaradsPerMm};
    ///
    /// let c = PicofaradsPerMm::new(0.2).total(Millimeters::new(2.0));
    /// assert_eq!(c.value(), 0.4);
    /// ```
    PicofaradsPerMm,
    "pF/mm"
);

quantity!(
    /// Distributed wire resistance in kilo-ohms per millimetre.
    ///
    /// The paper quotes `0.4 kΩ/mm` for the target 90 nm technology.
    KiloOhmsPerMm,
    "kOhm/mm"
);

quantity!(
    /// A lumped capacitance in picofarads.
    Picofarads,
    "pF"
);

impl PicofaradsPerMm {
    /// Total capacitance of a wire of the given length.
    #[must_use]
    pub fn total(self, length: Millimeters) -> Picofarads {
        Picofarads::new(self.value() * length.value())
    }
}

impl KiloOhmsPerMm {
    /// Total resistance (in kΩ) of a wire of the given length.
    #[must_use]
    pub fn total_kohm(self, length: Millimeters) -> f64 {
        self.value() * length.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_constants_scale_linearly() {
        let c = PicofaradsPerMm::new(0.2);
        let r = KiloOhmsPerMm::new(0.4);
        assert_eq!(c.total(Millimeters::new(1.5)).value(), 0.2 * 1.5);
        assert_eq!(r.total_kohm(Millimeters::new(1.5)), 0.4 * 1.5);
    }

    #[test]
    fn zero_length_wire_has_no_parasitics() {
        assert_eq!(
            PicofaradsPerMm::new(0.2).total(Millimeters::ZERO),
            Picofarads::ZERO
        );
        assert_eq!(KiloOhmsPerMm::new(0.4).total_kohm(Millimeters::ZERO), 0.0);
    }

    proptest! {
        #[test]
        fn capacitance_additive_in_length(c in 0.01f64..10.0, a in 0.0f64..10.0, b in 0.0f64..10.0) {
            let cp = PicofaradsPerMm::new(c);
            let joined = cp.total(Millimeters::new(a) + Millimeters::new(b));
            let split = cp.total(Millimeters::new(a)) + cp.total(Millimeters::new(b));
            prop_assert!((joined.value() - split.value()).abs() < 1e-9);
        }
    }
}
