//! Clock frequency in [`Gigahertz`], with period conversions used throughout
//! the link-timing analysis.

use crate::Picoseconds;

quantity!(
    /// A clock frequency in gigahertz.
    ///
    /// The paper's headline operating points all live here: the demonstrator
    /// network runs at 1 GHz, a head-to-head pipeline reaches 1.8 GHz, the
    /// 5×5 router 1.2 GHz and the 3×3 router 1.4 GHz.
    ///
    /// ```
    /// use icnoc_units::{Gigahertz, Picoseconds};
    ///
    /// // Thalf at 1 GHz, the quantity eqs. (1)-(7) are written around:
    /// assert_eq!(Gigahertz::new(1.0).half_period(), Picoseconds::new(500.0));
    /// ```
    Gigahertz,
    "GHz"
);

impl Gigahertz {
    /// Returns the full clock period `T`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative: a period is only
    /// meaningful for a running clock.
    #[must_use]
    #[track_caller]
    pub fn period(self) -> Picoseconds {
        assert!(
            self.value() > 0.0,
            "period is undefined for non-positive frequency {self}"
        );
        Picoseconds::new(1000.0 / self.value())
    }

    /// Returns the half period `T_half`, assuming the paper's 50 % duty
    /// cycle. This is the quantity entering timing equations (1)–(7).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn half_period(self) -> Picoseconds {
        self.period().halved()
    }

    /// Builds a frequency from a full clock period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or negative.
    #[must_use]
    #[track_caller]
    pub fn from_period(period: Picoseconds) -> Self {
        assert!(
            period.value() > 0.0,
            "frequency is undefined for non-positive period {period}"
        );
        Self::new(1000.0 / period.value())
    }

    /// Builds a frequency whose *half* period equals `half`, i.e. the fastest
    /// 50 %-duty clock whose phase is `half` long.
    ///
    /// # Panics
    ///
    /// Panics if `half` is zero or negative.
    #[must_use]
    pub fn from_half_period(half: Picoseconds) -> Self {
        Self::from_period(half * 2.0)
    }
}

impl Picoseconds {
    /// Returns half of this span — `T_half` when applied to a clock period.
    #[must_use]
    pub fn halved(self) -> Self {
        self / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_operating_points() {
        assert_eq!(Gigahertz::new(1.0).period(), Picoseconds::new(1000.0));
        assert_eq!(Gigahertz::new(1.0).half_period(), Picoseconds::new(500.0));
        // 1.8 GHz head-to-head pipeline => ~278 ps half period
        let half = Gigahertz::new(1.8).half_period();
        assert!((half.value() - 277.78).abs() < 0.01);
    }

    #[test]
    fn from_period_inverts_period() {
        let f = Gigahertz::from_period(Picoseconds::new(714.29));
        assert!((f.value() - 1.4).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "period is undefined")]
    fn zero_frequency_has_no_period() {
        let _ = Gigahertz::ZERO.period();
    }

    #[test]
    #[should_panic(expected = "frequency is undefined")]
    fn zero_period_has_no_frequency() {
        let _ = Gigahertz::from_period(Picoseconds::ZERO);
    }

    proptest! {
        #[test]
        fn period_round_trip(f in 0.01f64..100.0) {
            let back = Gigahertz::from_period(Gigahertz::new(f).period());
            prop_assert!((back.value() - f).abs() < f * 1e-12);
        }

        #[test]
        fn half_period_is_half_of_period(f in 0.01f64..100.0) {
            let g = Gigahertz::new(f);
            prop_assert_eq!(g.half_period() * 2.0, g.period());
        }

        #[test]
        fn slower_clock_longer_period(a in 0.01f64..100.0, b in 0.01f64..100.0) {
            prop_assume!(a < b);
            prop_assert!(Gigahertz::new(a).period() > Gigahertz::new(b).period());
        }
    }
}
