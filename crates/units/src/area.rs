//! Silicon area quantities, for the paper's Section 6 area accounting.

quantity!(
    /// A silicon area in square millimetres.
    ///
    /// The demonstrator NoC totals 0.73 mm², 0.73 % of its 100 mm² die.
    ///
    /// ```
    /// use icnoc_units::SquareMillimeters;
    ///
    /// let noc = SquareMillimeters::new(0.73);
    /// let die = SquareMillimeters::new(100.0);
    /// assert_eq!(noc.fraction_of(die), 0.0073);
    /// ```
    SquareMillimeters,
    "mm^2"
);

quantity!(
    /// A silicon area in square micrometres, for per-cell detail.
    SquareMicrometers,
    "um^2"
);

impl SquareMillimeters {
    /// Returns what fraction of `whole` this area occupies (0.0–1.0 for
    /// sub-areas, possibly more when this area exceeds `whole`).
    #[must_use]
    pub fn fraction_of(self, whole: Self) -> f64 {
        self.value() / whole.value()
    }

    /// Converts to square micrometres.
    #[must_use]
    pub fn to_square_micrometers(self) -> SquareMicrometers {
        SquareMicrometers::new(self.value() * 1e6)
    }
}

impl SquareMicrometers {
    /// Converts to square millimetres.
    #[must_use]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters::new(self.value() / 1e6)
    }
}

impl From<SquareMicrometers> for SquareMillimeters {
    fn from(a: SquareMicrometers) -> Self {
        a.to_square_millimeters()
    }
}

impl From<SquareMillimeters> for SquareMicrometers {
    fn from(a: SquareMillimeters) -> Self {
        a.to_square_micrometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn demonstrator_area_fraction() {
        let noc = SquareMillimeters::new(0.73);
        let die = SquareMillimeters::new(100.0);
        assert!((noc.fraction_of(die) - 0.0073).abs() < 1e-12);
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(
            SquareMillimeters::new(0.0015).to_square_micrometers(),
            SquareMicrometers::new(1500.0)
        );
    }

    proptest! {
        #[test]
        fn area_round_trip(v in 0.0f64..1e6) {
            let a = SquareMillimeters::new(v);
            let back = SquareMillimeters::from(SquareMicrometers::from(a));
            prop_assert!((back.value() - v).abs() <= v * 1e-12 + 1e-12);
        }
    }
}
