//! Physical quantity newtypes for the IC-NoC reproduction.
//!
//! The IC-NoC timing analysis (Bjerregaard et al., DATE 2007) mixes times in
//! picoseconds, wire lengths in millimetres, frequencies in gigahertz,
//! distributed wire capacitance/resistance, and silicon areas. Using bare
//! `f64`s for all of these is a recipe for the exact class of unit-confusion
//! bug a timing-signoff tool must never have, so every quantity gets its own
//! [newtype](https://rust-lang.github.io/api-guidelines/type-safety.html)
//! with only the physically meaningful operations defined.
//!
//! # Example
//!
//! ```
//! use icnoc_units::{Gigahertz, Millimeters, Picoseconds};
//!
//! let period = Gigahertz::new(1.0).period();
//! assert_eq!(period, Picoseconds::new(1000.0));
//! let half = period.halved();
//! assert_eq!(half, Picoseconds::new(500.0));
//! let wire = Millimeters::new(1.25) + Millimeters::new(0.75);
//! assert_eq!(wire, Millimeters::new(2.0));
//! ```
//!
//! All quantities are `Copy` and compare with ordinary float semantics; the
//! constructors reject NaN (see [`Picoseconds::new`] for the policy shared by
//! every type).

#![warn(missing_docs)]

/// Defines an `f64`-backed physical quantity newtype with the standard set
/// of arithmetic and formatting impls.
///
/// Generated API per type `Q`:
/// * `Q::new(f64) -> Q` (panics on NaN), `Q::ZERO`, `.value() -> f64`
/// * `Q + Q`, `Q - Q`, `Q * f64`, `f64 * Q`, `Q / f64`, `Q / Q -> f64`
/// * `-Q`, `Sum`, `PartialOrd`, `Display` with the unit suffix
/// * `.abs()`, `.min(Q)`, `.max(Q)`, `.clamp(Q, Q)`, `.is_negative()`
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value in the canonical unit.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN. Infinite values are allowed: the
            /// timing solvers use `+inf` as "no constraint".
            #[must_use]
            #[track_caller]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                Self(value)
            }

            /// Returns the raw value in the canonical unit.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is strictly below zero.
            #[must_use]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }

            /// Returns `true` if the value is finite (not ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `n` evenly spaced samples from `self` to `end` inclusive —
            /// the standard way to declare a swept axis of this quantity
            /// in a design-space grid.
            ///
            /// `n == 1` yields just `self`.
            ///
            /// # Panics
            ///
            /// Panics if `n` is zero.
            #[must_use]
            #[track_caller]
            pub fn linspace(self, end: Self, n: usize) -> Vec<Self> {
                assert!(n > 0, "linspace needs at least one sample");
                if n == 1 {
                    return vec![self];
                }
                let step = (end.0 - self.0) / (n - 1) as f64;
                (0..n)
                    .map(|i| {
                        if i + 1 == n {
                            end // land exactly on the endpoint
                        } else {
                            Self::new(self.0 + step * i as f64)
                        }
                    })
                    .collect()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self::new(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name::new(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self::new(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

mod area;
mod electrical;
mod frequency;
mod length;
mod power;
mod time;

pub use area::{SquareMicrometers, SquareMillimeters};
pub use electrical::{KiloOhmsPerMm, Picofarads, PicofaradsPerMm};
pub use frequency::Gigahertz;
pub use length::{Micrometers, Millimeters};
pub use power::{Microwatts, Milliwatts, Picojoules};
pub use time::{Nanoseconds, Picoseconds};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Picoseconds::new(60.0).to_string(), "60 ps");
        assert_eq!(format!("{:.2}", Millimeters::new(1.25)), "1.25 mm");
        assert_eq!(Gigahertz::new(1.8).to_string(), "1.8 GHz");
    }

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Picoseconds>();
        assert_send_sync::<Millimeters>();
        assert_send_sync::<Gigahertz>();
        assert_send_sync::<SquareMillimeters>();
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_is_rejected() {
        let _ = Picoseconds::new(f64::NAN);
    }

    #[test]
    fn linspace_covers_both_endpoints_evenly() {
        let axis = Gigahertz::new(0.8).linspace(Gigahertz::new(1.2), 5);
        assert_eq!(axis.len(), 5);
        assert_eq!(axis[0], Gigahertz::new(0.8));
        assert_eq!(axis[4], Gigahertz::new(1.2));
        assert!((axis[2].value() - 1.0).abs() < 1e-12);
        // Degenerate single-sample axis is just the start.
        assert_eq!(
            Millimeters::new(10.0).linspace(Millimeters::new(20.0), 1),
            vec![Millimeters::new(10.0)]
        );
        // Reversed axes are allowed (descending sweeps).
        let down = Picoseconds::new(500.0).linspace(Picoseconds::new(400.0), 3);
        assert_eq!(down[1], Picoseconds::new(450.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn linspace_rejects_zero_samples() {
        let _ = Gigahertz::new(1.0).linspace(Gigahertz::new(2.0), 0);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let ratio = Millimeters::new(3.0) / Millimeters::new(1.5);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Picoseconds = [10.0, 20.0, 30.0]
            .iter()
            .map(|&v| Picoseconds::new(v))
            .sum();
        assert_eq!(total, Picoseconds::new(60.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Picoseconds::new(10.0);
        let b = Picoseconds::new(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Picoseconds::new(25.0).clamp(a, b), b);
        assert_eq!(Picoseconds::new(5.0).clamp(a, b), a);
    }

    #[test]
    fn negative_detection() {
        assert!(Picoseconds::new(-540.0).is_negative());
        assert!(!Picoseconds::ZERO.is_negative());
    }

    #[test]
    fn add_sub_neg_assign_ops() {
        let mut t = Picoseconds::new(100.0);
        t += Picoseconds::new(20.0);
        assert_eq!(t, Picoseconds::new(120.0));
        t -= Picoseconds::new(70.0);
        assert_eq!(t, Picoseconds::new(50.0));
        assert_eq!(-t, Picoseconds::new(-50.0));
        assert_eq!(t * 2.0, Picoseconds::new(100.0));
        assert_eq!(2.0 * t, Picoseconds::new(100.0));
        assert_eq!(t / 2.0, Picoseconds::new(25.0));
    }
}
