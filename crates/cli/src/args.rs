//! Hand-rolled argument parsing (no external dependencies needed for a
//! handful of subcommands of `--key value` flags).

use icnoc_clock::ClockBackend;
use icnoc_sim::{FaultRates, SimKernel, TrafficPattern};
use icnoc_topology::{PortId, TreeKind};

/// A parse or validation failure, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Build options shared by most subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOpts {
    /// Network port count.
    pub ports: usize,
    /// Tree kind.
    pub kind: TreeKind,
    /// Clock frequency in GHz.
    pub freq: f64,
    /// Die edge in mm (square die).
    pub die: f64,
    /// Data-path width in bits.
    pub width: u32,
    /// Clock-distribution backend.
    pub clock: ClockBackend,
}

impl Default for BuildOpts {
    fn default() -> Self {
        Self {
            ports: 64,
            kind: TreeKind::Binary,
            freq: 1.0,
            die: 10.0,
            width: 32,
            clock: ClockBackend::Forwarded,
        }
    }
}

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
}

/// Output format for the `stats` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// One JSON document with totals, elements and flows.
    Json,
    /// Two CSV tables: per-element counters, then per-flow latencies.
    Csv,
}

/// One subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the system summary.
    Info(BuildOpts),
    /// Run timing verification and print the STA report.
    Verify {
        /// Build options.
        build: BuildOpts,
        /// Systematic variation fraction.
        variation: f64,
        /// Random mismatch sigma.
        sigma: f64,
        /// Critical paths to list.
        top: usize,
    },
    /// Simulate traffic and print the run + power report.
    Sim {
        /// Build options.
        build: BuildOpts,
        /// Per-port traffic pattern.
        pattern: TrafficPattern,
        /// Cycles to simulate before draining.
        cycles: u64,
        /// Master seed.
        seed: u64,
        /// Flits per packet.
        packet_len: u32,
        /// Closed-loop tiles as `(max_outstanding, service_cycles)`.
        tiles: Option<(usize, u64)>,
        /// Write a VCD waveform of the first `cycles.min(200)` cycles here.
        vcd: Option<String>,
        /// Print the stall diagnosis (flit-holding elements) after the run.
        diagnose: bool,
        /// Fault-injection spec (see `parse_fault_spec`), if any.
        faults: Option<FaultSpec>,
        /// Stepping kernel (`event` default; `dense` is the oracle).
        kernel: SimKernel,
        /// Speculate-and-replay window bound for the parallel kernel
        /// (`--speculate [K]` / `ICNOC_SPECULATE`).
        speculate: Option<u32>,
        /// Attach the kernel profiler and print the per-shard summary
        /// table after the report.
        profile: bool,
        /// Write a Chrome trace-event JSON timeline here (implies
        /// profiling).
        chrome_trace: Option<String>,
    },
    /// Profile a simulation: run with the kernel profiler attached and
    /// print the per-shard breakdown (a focussed alias for
    /// `sim --profile`).
    Profile {
        /// Build options.
        build: BuildOpts,
        /// Per-port traffic pattern.
        pattern: TrafficPattern,
        /// Cycles to simulate before draining.
        cycles: u64,
        /// Master seed.
        seed: u64,
        /// Flits per packet.
        packet_len: u32,
        /// Closed-loop tiles as `(max_outstanding, service_cycles)`.
        tiles: Option<(usize, u64)>,
        /// Stepping kernel (`event` default; `dense` is the oracle).
        kernel: SimKernel,
        /// Speculate-and-replay window bound for the parallel kernel
        /// (`--speculate [K]` / `ICNOC_SPECULATE`).
        speculate: Option<u32>,
        /// Write a Chrome trace-event JSON timeline here.
        chrome_trace: Option<String>,
    },
    /// Run a counter-traced simulation and export per-element utilisation
    /// and per-flow latency percentiles.
    Stats {
        /// Build options.
        build: BuildOpts,
        /// Per-port traffic pattern.
        pattern: TrafficPattern,
        /// Cycles to simulate before draining.
        cycles: u64,
        /// Master seed.
        seed: u64,
        /// Flits per packet.
        packet_len: u32,
        /// Closed-loop tiles as `(max_outstanding, service_cycles)`.
        tiles: Option<(usize, u64)>,
        /// Export format.
        format: StatsFormat,
        /// Write the export here instead of printing it.
        out: Option<String>,
        /// Stepping kernel (`event` default; `dense` is the oracle).
        kernel: SimKernel,
    },
    /// Run an event-traced simulation and dump the trailing flit-lifecycle
    /// events.
    Trace {
        /// Build options.
        build: BuildOpts,
        /// Per-port traffic pattern.
        pattern: TrafficPattern,
        /// Cycles to simulate.
        cycles: u64,
        /// Master seed.
        seed: u64,
        /// Flits per packet.
        packet_len: u32,
        /// Ring-buffer capacity (events retained).
        capacity: usize,
        /// Maximum events to print (most recent first retained).
        limit: usize,
        /// Also write a VCD waveform of the first `cycles.min(200)` cycles.
        vcd: Option<String>,
        /// Stepping kernel (`event` default; `dense` is the oracle).
        kernel: SimKernel,
    },
    /// Monte-Carlo yield analysis.
    Yield {
        /// Build options.
        build: BuildOpts,
        /// Systematic variation fraction.
        variation: f64,
        /// Random mismatch sigma.
        sigma: f64,
        /// Sample dies.
        samples: usize,
        /// Seed.
        seed: u64,
    },
    /// Print the Figure 7 frequency-vs-length curve.
    Fig7 {
        /// Longest length to sample (mm).
        max_mm: f64,
        /// Sampling step (mm).
        step_mm: f64,
    },
    /// Run a design-space exploration sweep: shard a parameter grid over
    /// worker threads, cache results, and report Pareto fronts.
    Explore {
        /// Grid spec (`;`-separated axes; see
        /// [`icnoc_explore::GridSpec::parse`]). Empty = the demonstrator
        /// point.
        grid: String,
        /// Worker threads (jobs run concurrently).
        jobs: usize,
        /// Simulate each job with the parallel kernel at this worker
        /// count (`0` = one per core); `None` keeps the default kernel.
        workers: Option<u32>,
        /// Result-cache directory, if caching was requested.
        cache_dir: Option<String>,
        /// Whether `--resume` selected the default cache directory.
        resume: bool,
        /// Where to write the JSON analysis.
        out: String,
        /// Suppress the live progress line.
        quiet: bool,
        /// Attach the kernel profiler to every executed job, adding
        /// `perf` telemetry to the sweep output.
        profile: bool,
        /// Speculate-and-replay window bound for parallel-kernel jobs
        /// (`--speculate [K]` / `ICNOC_SPECULATE`).
        speculate: Option<u32>,
        /// Submit the grid to a running `icnoc serve` daemon at this
        /// address instead of executing locally. Execution flags
        /// (`--jobs`, `--workers`, `--cache-dir`, `--resume`,
        /// `--profile`) are the daemon's decisions and conflict.
        server: Option<String>,
        /// Submission priority in server mode (higher runs sooner).
        priority: u32,
    },
    /// Run the resident sweep service: accept grid submissions over
    /// TCP, dedup them through the shared cache, stream results, and
    /// journal accepted sweeps for crash recovery.
    Serve {
        /// Listen address (`host:port`; port 0 picks a free port —
        /// the bound address lands in `<state-dir>/endpoint`).
        addr: String,
        /// State directory: result cache, job ledger and endpoint file.
        state_dir: String,
        /// Worker threads executing jobs.
        workers: usize,
        /// Admission-queue depth limit (full → structured 429).
        queue_limit: usize,
    },
    /// Run a fault-injection soak and print the
    /// injected-vs-detected-vs-recovered accounting.
    Faults {
        /// Build options.
        build: BuildOpts,
        /// Per-port traffic pattern.
        pattern: TrafficPattern,
        /// Cycles to simulate before draining.
        cycles: u64,
        /// Master seed (traffic and injector alike).
        seed: u64,
        /// Flits per packet.
        packet_len: u32,
        /// What to inject.
        spec: FaultSpec,
        /// Stepping kernel (`event` default; `dense` is the oracle).
        kernel: SimKernel,
        /// Speculate-and-replay window bound for the parallel kernel
        /// (`--speculate [K]` / `ICNOC_SPECULATE`). A faulted run falls
        /// back to the sequential kernel, where this is advisory only.
        speculate: Option<u32>,
    },
    /// Print usage.
    Help,
}

/// A parsed `--faults` / `--spec` value: rates plus an optional injection
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-edge injection probabilities.
    pub rates: FaultRates,
    /// Injection restricted to half-cycle ticks `[start, end)`, if set.
    pub window: Option<(u64, u64)>,
}

impl Cli {
    /// Parses a full argument list (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] for unknown subcommands, unknown flags,
    /// missing values or malformed numbers.
    pub fn parse<I, S>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let Some((sub, rest)) = args.split_first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let mut flags = Flags::parse(rest)?;
        let command = match sub.as_str() {
            "info" => Command::Info(flags.build_opts()?),
            "verify" => Command::Verify {
                build: flags.build_opts()?,
                variation: flags.take_f64("variation", 0.0)?,
                sigma: flags.take_f64("sigma", 0.0)?,
                top: flags.take_usize("top", 10)?,
            },
            "sim" => {
                let kernel = flags.take_kernel()?;
                let speculate = flags.take_speculate(kernel)?;
                Command::Sim {
                    build: flags.build_opts()?,
                    pattern: parse_pattern(&flags.take_string("pattern", "uniform:0.2"))?,
                    cycles: flags.take_u64("cycles", 2_000)?,
                    seed: flags.take_u64("seed", 42)?,
                    packet_len: flags.take_usize("packet-len", 1)? as u32,
                    tiles: match flags.take_opt_string("tiles") {
                        Some(spec) => Some(parse_tiles(&spec)?),
                        None => None,
                    },
                    vcd: flags.take_opt_string("vcd"),
                    diagnose: flags.take_bool("diagnose")?,
                    faults: match flags.take_opt_string("faults") {
                        Some(spec) => Some(parse_fault_spec(&spec)?),
                        None => None,
                    },
                    kernel,
                    speculate,
                    profile: flags.take_bool("profile")?,
                    chrome_trace: flags.take_opt_string("chrome-trace"),
                }
            }
            "profile" => {
                let kernel = flags.take_kernel()?;
                let speculate = flags.take_speculate(kernel)?;
                Command::Profile {
                    build: flags.build_opts()?,
                    pattern: parse_pattern(&flags.take_string("pattern", "uniform:0.2"))?,
                    cycles: flags.take_u64("cycles", 2_000)?,
                    seed: flags.take_u64("seed", 42)?,
                    packet_len: flags.take_usize("packet-len", 1)? as u32,
                    tiles: match flags.take_opt_string("tiles") {
                        Some(spec) => Some(parse_tiles(&spec)?),
                        None => None,
                    },
                    kernel,
                    speculate,
                    chrome_trace: flags.take_opt_string("chrome-trace"),
                }
            }
            "stats" => Command::Stats {
                build: flags.build_opts()?,
                pattern: parse_pattern(&flags.take_string("pattern", "uniform:0.2"))?,
                cycles: flags.take_u64("cycles", 2_000)?,
                seed: flags.take_u64("seed", 42)?,
                packet_len: flags.take_usize("packet-len", 1)? as u32,
                tiles: match flags.take_opt_string("tiles") {
                    Some(spec) => Some(parse_tiles(&spec)?),
                    None => None,
                },
                format: match flags.take_string("format", "json").as_str() {
                    "json" => StatsFormat::Json,
                    "csv" => StatsFormat::Csv,
                    other => {
                        return Err(CliError(format!(
                            "--format must be json or csv, got {other:?}"
                        )))
                    }
                },
                out: flags.take_opt_string("out"),
                kernel: flags.take_kernel()?,
            },
            "trace" => {
                let capacity = flags.take_usize("capacity", 4_096)?;
                if capacity == 0 {
                    return Err(CliError("--capacity must be at least 1".to_owned()));
                }
                Command::Trace {
                    build: flags.build_opts()?,
                    pattern: parse_pattern(&flags.take_string("pattern", "uniform:0.2"))?,
                    cycles: flags.take_u64("cycles", 200)?,
                    seed: flags.take_u64("seed", 42)?,
                    packet_len: flags.take_usize("packet-len", 1)? as u32,
                    capacity,
                    limit: flags.take_usize("limit", 40)?,
                    vcd: flags.take_opt_string("vcd"),
                    kernel: flags.take_kernel()?,
                }
            }
            "yield" => Command::Yield {
                build: flags.build_opts()?,
                variation: flags.take_f64("variation", 0.2)?,
                sigma: flags.take_f64("sigma", 0.05)?,
                samples: flags.take_usize("samples", 200)?,
                seed: flags.take_u64("seed", 42)?,
            },
            "fig7" => Command::Fig7 {
                max_mm: flags.take_f64("max-mm", 3.0)?,
                step_mm: flags.take_f64("step-mm", 0.1)?,
            },
            "explore" => {
                let server = flags.take_opt_string("server");
                let priority = flags.take_u64("priority", 0)? as u32;
                let jobs_flag = flags.take_opt_string("jobs");
                let jobs = match &jobs_flag {
                    None => 1,
                    Some(v) => v
                        .parse()
                        .map_err(|_| CliError(format!("--jobs expects an integer, got {v:?}")))?,
                };
                if jobs == 0 {
                    return Err(CliError("--jobs must be at least 1".to_owned()));
                }
                let workers = match flags.take_opt_string("workers") {
                    None => None,
                    Some(v) => Some(v.parse().map_err(|_| {
                        CliError(format!("--workers expects an integer, got {v:?}"))
                    })?),
                };
                let cache_dir = flags.take_opt_string("cache-dir");
                let resume = flags.take_bool("resume")?;
                let profile = flags.take_bool("profile")?;
                let speculate_flag = flags.take_opt_string("speculate");
                if server.is_some()
                    && (jobs_flag.is_some()
                        || workers.is_some()
                        || cache_dir.is_some()
                        || resume
                        || profile
                        || speculate_flag.is_some())
                {
                    return Err(CliError(
                        "--server delegates execution to the daemon; --jobs, --workers, \
                         --cache-dir, --resume, --profile and --speculate do not apply"
                            .to_owned(),
                    ));
                }
                let speculate = match speculate_flag {
                    // Absent: the environment decides, but only for
                    // parallel-kernel sweeps (a globally exported
                    // ICNOC_SPECULATE never errors a sequential sweep).
                    None => workers.and_then(|_| icnoc_sim::speculation_from_env()),
                    Some(v) => {
                        if workers.is_none() {
                            return Err(CliError(
                                "--speculate requires --workers (the parallel kernel)".to_owned(),
                            ));
                        }
                        parse_speculate_value(&v)?
                    }
                };
                if server.is_none() && priority != 0 {
                    return Err(CliError("--priority requires --server".to_owned()));
                }
                Command::Explore {
                    grid: flags.take_string("grid", ""),
                    jobs,
                    workers,
                    cache_dir,
                    resume,
                    out: flags.take_string("out", "BENCH_explore.json"),
                    quiet: flags.take_bool("quiet")?,
                    profile,
                    speculate,
                    server,
                    priority,
                }
            }
            "serve" => {
                let workers = flags.take_usize("workers", 2)?;
                if workers == 0 {
                    return Err(CliError("--workers must be at least 1".to_owned()));
                }
                let queue_limit = flags.take_usize("queue-limit", 256)?;
                if queue_limit == 0 {
                    return Err(CliError("--queue-limit must be at least 1".to_owned()));
                }
                Command::Serve {
                    addr: flags.take_string("addr", "127.0.0.1:7070"),
                    state_dir: flags.take_string("state-dir", icnoc_explore::DEFAULT_CACHE_DIR),
                    workers,
                    queue_limit,
                }
            }
            "faults" => {
                let kernel = flags.take_kernel()?;
                let speculate = flags.take_speculate(kernel)?;
                Command::Faults {
                    build: flags.build_opts()?,
                    pattern: parse_pattern(&flags.take_string("pattern", "uniform:0.2"))?,
                    cycles: flags.take_u64("cycles", 10_000)?,
                    seed: flags.take_u64("seed", 42)?,
                    packet_len: flags.take_usize("packet-len", 1)? as u32,
                    spec: parse_fault_spec(&flags.take_string("spec", "soak"))?,
                    kernel,
                    speculate,
                }
            }
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(CliError(format!("unknown subcommand {other:?}; try help"))),
        };
        flags.finish()?;
        Ok(Cli { command })
    }
}

/// Parses a traffic-pattern spec:
/// `uniform:RATE`, `neighbor:RATE`, `saturate`, `silent`,
/// `hotspot:RATE:TARGET:FRACTION`, `bursty:BURST:IDLE`, `memory:RATE`.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown pattern names or malformed numbers.
pub fn parse_pattern(spec: &str) -> Result<TrafficPattern, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<f64, CliError> {
        s.parse()
            .map_err(|_| CliError(format!("bad number {s:?} in pattern {spec:?}")))
    };
    match parts.as_slice() {
        ["saturate"] => Ok(TrafficPattern::Saturate),
        ["silent"] => Ok(TrafficPattern::Silent),
        ["uniform", r] => Ok(TrafficPattern::Uniform { rate: num(r)? }),
        ["neighbor", r] | ["neighbour", r] => Ok(TrafficPattern::Neighbor { rate: num(r)? }),
        ["memory", r] => Ok(TrafficPattern::RandomMemory { rate: num(r)? }),
        ["hotspot", r, t, f] => Ok(TrafficPattern::Hotspot {
            rate: num(r)?,
            target: PortId(num(t)? as u32),
            fraction: num(f)?,
        }),
        ["bursty", b, i] => Ok(TrafficPattern::Bursty {
            burst: num(b)? as u32,
            idle: num(i)? as u32,
        }),
        _ => Err(CliError(format!(
            "unknown pattern {spec:?}; try uniform:0.2, neighbor:0.3, \
             hotspot:0.3:0:0.5, bursty:10:90, memory:0.2, saturate, silent"
        ))),
    }
}

/// Parses a fault spec:
/// * `soak` — the default all-kinds profile (link/data kinds);
/// * `clock-soak` — the soak profile plus every clock-domain kind;
/// * `soak*F` / `clock-soak*F` — either profile with every rate scaled
///   by `F`;
/// * a comma list of `key=rate` pairs over `jitter`, `spike`, `corrupt`,
///   `drop`, `stuck`, `lost`, `outage`, `clock-outage`, `pulse-drop`,
///   `skew-drift` (unset keys stay zero), optionally with
///   `window=START:END` restricting injection to those ticks.
///
/// # Errors
///
/// Returns a [`CliError`] naming the valid keys for unknown keys, and one
/// for malformed numbers, rates outside `[0, 1]` or an empty window.
pub fn parse_fault_spec(spec: &str) -> Result<FaultSpec, CliError> {
    let num = |s: &str| -> Result<f64, CliError> {
        s.parse()
            .map_err(|_| CliError(format!("bad number {s:?} in fault spec {spec:?}")))
    };
    for (profile, rates) in [
        ("soak", FaultRates::soak as fn() -> FaultRates),
        ("clock-soak", FaultRates::clock_soak),
    ] {
        if spec == profile {
            return Ok(FaultSpec {
                rates: rates(),
                window: None,
            });
        }
        if let Some(factor) = spec.strip_prefix(profile).and_then(|r| r.strip_prefix('*')) {
            let f = num(factor)?;
            if f < 0.0 {
                return Err(CliError(format!("{profile} scale {f} must be >= 0")));
            }
            return Ok(FaultSpec {
                rates: rates().scaled(f),
                window: None,
            });
        }
    }
    let mut rates = FaultRates::ZERO;
    let mut window = None;
    for pair in spec.split(',') {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(CliError(format!(
                "fault spec entry {pair:?} must be key=value (or use \"soak\")"
            )));
        };
        if key == "window" {
            let (start, end) = value
                .split_once(':')
                .ok_or_else(|| CliError(format!("window {value:?} must be START:END ticks")))?;
            let parse_tick = |s: &str| -> Result<u64, CliError> {
                s.parse()
                    .map_err(|_| CliError(format!("bad tick {s:?} in fault window")))
            };
            let (start, end) = (parse_tick(start)?, parse_tick(end)?);
            if start >= end {
                return Err(CliError(format!("fault window {start}:{end} is empty")));
            }
            window = Some((start, end));
            continue;
        }
        let rate = num(value)?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(CliError(format!(
                "fault rate {key}={rate} must be a probability in [0, 1]"
            )));
        }
        match key {
            "jitter" => rates.link_jitter = rate,
            "spike" => rates.skew_spike = rate,
            "corrupt" => rates.bit_corruption = rate,
            "drop" => rates.flit_drop = rate,
            "stuck" => rates.stuck_valid = rate,
            "lost" => rates.lost_valid = rate,
            "outage" => rates.outage = rate,
            "clock-outage" | "clock_outage" => rates.clock_outage = rate,
            "pulse-drop" | "pulse_drop" => rates.pulse_drop = rate,
            "skew-drift" | "skew_drift" => rates.skew_drift = rate,
            other => {
                return Err(CliError(format!(
                    "unknown fault key {other:?}; try jitter, spike, corrupt, drop, \
                     stuck, lost, outage, clock-outage, pulse-drop, skew-drift or \
                     window"
                )))
            }
        }
    }
    Ok(FaultSpec { rates, window })
}

/// Parses an explicit `--speculate` value: `on`/`true` (including the bare
/// switch) mean the default window bound, `off`/`false` disable, an
/// integer is an explicit `K` (clamped to at least 1).
fn parse_speculate_value(v: &str) -> Result<Option<u32>, CliError> {
    match v {
        "true" | "on" | "yes" => Ok(Some(icnoc_sim::DEFAULT_SPECULATION_K)),
        "false" | "off" | "no" => Ok(None),
        other => other.parse::<u32>().map(|k| Some(k.max(1))).map_err(|_| {
            CliError(format!(
                "--speculate expects an integer window bound or on/off, got {other:?}"
            ))
        }),
    }
}

fn parse_tiles(spec: &str) -> Result<(usize, u64), CliError> {
    let (a, b) = spec
        .split_once(':')
        .ok_or_else(|| CliError(format!("tiles spec {spec:?} must be OUTSTANDING:SERVICE")))?;
    Ok((
        a.parse()
            .map_err(|_| CliError(format!("bad outstanding count {a:?}")))?,
        b.parse()
            .map_err(|_| CliError(format!("bad service cycles {b:?}")))?,
    ))
}

/// `--key value` flag multiset with consumption tracking.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(CliError(format!("expected --flag, got {key:?}")));
            };
            // A flag followed by another flag (or by nothing) is a boolean
            // switch: it reads as "true". Value-taking flags still reject
            // it downstream when "true" fails to parse.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_owned(),
            };
            flags.push((name.to_owned(), value));
        }
        Ok(Self(flags))
    }

    fn take_opt_string(&mut self, name: &str) -> Option<String> {
        let idx = self.0.iter().position(|(k, _)| k == name)?;
        Some(self.0.remove(idx).1)
    }

    fn take_string(&mut self, name: &str, default: &str) -> String {
        self.take_opt_string(name)
            .unwrap_or_else(|| default.to_owned())
    }

    fn take_f64(&mut self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.take_opt_string(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    fn take_u64(&mut self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.take_opt_string(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{name} expects an integer, got {v:?}"))),
        }
    }

    fn take_usize(&mut self, name: &str, default: usize) -> Result<usize, CliError> {
        self.take_u64(name, default as u64).map(|v| v as usize)
    }

    fn take_kernel(&mut self) -> Result<SimKernel, CliError> {
        let kernel = match self.take_opt_string("kernel") {
            None => SimKernel::default(),
            Some(v) => SimKernel::parse(&v).map_err(CliError)?,
        };
        match self.take_opt_string("workers") {
            None => Ok(kernel),
            Some(v) => {
                let workers: u32 = v
                    .parse()
                    .map_err(|_| CliError(format!("--workers expects an integer, got {v:?}")))?;
                match kernel {
                    SimKernel::Parallel { .. } => Ok(SimKernel::Parallel { workers }),
                    _ => Err(CliError("--workers requires --kernel parallel".to_owned())),
                }
            }
        }
    }

    /// Resolves `--speculate` for a parallel-capable subcommand: the bare
    /// switch (or `on`/`true`) selects the default window bound
    /// [`DEFAULT_SPECULATION_K`], `off`/`false` disables, and an integer
    /// is an explicit `K` (clamped to at least 1). When the flag is
    /// absent, `ICNOC_SPECULATE` decides — but only on the parallel
    /// kernel, so a globally exported variable never errors a sequential
    /// run. Passing the flag explicitly on a sequential kernel is a
    /// usage error.
    fn take_speculate(&mut self, kernel: SimKernel) -> Result<Option<u32>, CliError> {
        let Some(v) = self.take_opt_string("speculate") else {
            return Ok(match kernel {
                SimKernel::Parallel { .. } => icnoc_sim::speculation_from_env(),
                _ => None,
            });
        };
        if !matches!(kernel, SimKernel::Parallel { .. }) {
            return Err(CliError(
                "--speculate requires --kernel parallel".to_owned(),
            ));
        }
        parse_speculate_value(&v)
    }

    fn take_bool(&mut self, name: &str) -> Result<bool, CliError> {
        match self.take_opt_string(name) {
            None => Ok(false),
            Some(v) => match v.as_str() {
                "true" | "on" | "yes" => Ok(true),
                "false" | "off" | "no" => Ok(false),
                _ => Err(CliError(format!(
                    "--{name} is a switch (true/false), got {v:?}"
                ))),
            },
        }
    }

    fn build_opts(&mut self) -> Result<BuildOpts, CliError> {
        let defaults = BuildOpts::default();
        let kind = match self.take_string("kind", "binary").as_str() {
            "binary" => TreeKind::Binary,
            "quad" => TreeKind::Quad,
            other => {
                return Err(CliError(format!(
                    "--kind must be binary or quad, got {other:?}"
                )))
            }
        };
        let clock = match self.take_opt_string("clock-backend") {
            None => defaults.clock,
            Some(v) => ClockBackend::parse(&v).map_err(CliError)?,
        };
        Ok(BuildOpts {
            ports: self.take_usize("ports", defaults.ports)?,
            kind,
            freq: self.take_f64("freq", defaults.freq)?,
            die: self.take_f64("die", defaults.die)?,
            width: self.take_usize("width", defaults.width as usize)? as u32,
            clock,
        })
    }

    fn finish(self) -> Result<(), CliError> {
        if let Some((k, _)) = self.0.first() {
            return Err(CliError(format!("unknown flag --{k}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_mean_help() {
        let cli = Cli::parse(Vec::<String>::new()).expect("parses");
        assert_eq!(cli.command, Command::Help);
    }

    #[test]
    fn info_with_defaults() {
        let cli = Cli::parse(["info"]).expect("parses");
        let Command::Info(build) = cli.command else {
            panic!("expected info");
        };
        assert_eq!(build, BuildOpts::default());
    }

    #[test]
    fn sim_with_everything() {
        let cli = Cli::parse([
            "sim",
            "--ports",
            "16",
            "--kind",
            "quad",
            "--freq",
            "1.2",
            "--pattern",
            "hotspot:0.3:0:0.5",
            "--cycles",
            "500",
            "--packet-len",
            "4",
            "--tiles",
            "4:5",
        ])
        .expect("parses");
        let Command::Sim {
            build,
            pattern,
            cycles,
            packet_len,
            tiles,
            ..
        } = cli.command
        else {
            panic!("expected sim");
        };
        assert_eq!(build.ports, 16);
        assert_eq!(build.kind, TreeKind::Quad);
        assert_eq!(cycles, 500);
        assert_eq!(packet_len, 4);
        assert_eq!(tiles, Some((4, 5)));
        assert!(matches!(pattern, TrafficPattern::Hotspot { .. }));
    }

    #[test]
    fn unknown_flags_and_commands_are_rejected() {
        assert!(Cli::parse(["info", "--bogus", "1"]).is_err());
        assert!(Cli::parse(["frobnicate"]).is_err());
        assert!(Cli::parse(["info", "--ports"]).is_err()); // missing value
        assert!(Cli::parse(["info", "--kind", "ring"]).is_err());
    }

    #[test]
    fn boolean_switches_parse_without_a_value() {
        let cli = Cli::parse(["sim", "--diagnose", "--cycles", "100"]).expect("parses");
        let Command::Sim {
            diagnose, cycles, ..
        } = cli.command
        else {
            panic!("expected sim");
        };
        assert!(diagnose);
        assert_eq!(cycles, 100);
        // Trailing switch, explicit value, and absence all work.
        let cli = Cli::parse(["sim", "--diagnose"]).expect("parses");
        assert!(matches!(cli.command, Command::Sim { diagnose: true, .. }));
        let cli = Cli::parse(["sim", "--diagnose", "false"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                diagnose: false,
                ..
            }
        ));
        let cli = Cli::parse(["sim"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                diagnose: false,
                ..
            }
        ));
        assert!(Cli::parse(["sim", "--diagnose", "maybe"]).is_err());
    }

    #[test]
    fn sim_profile_flags_parse() {
        let cli = Cli::parse(["sim", "--profile", "--chrome-trace", "trace.json"]).expect("parses");
        let Command::Sim {
            profile,
            chrome_trace,
            ..
        } = cli.command
        else {
            panic!("expected sim");
        };
        assert!(profile);
        assert_eq!(chrome_trace.as_deref(), Some("trace.json"));
        // Both default off.
        let cli = Cli::parse(["sim"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                profile: false,
                chrome_trace: None,
                ..
            }
        ));
    }

    #[test]
    fn profile_subcommand_parses_with_defaults() {
        let cli = Cli::parse([
            "profile",
            "--ports",
            "64",
            "--kernel",
            "parallel",
            "--workers",
            "4",
            "--chrome-trace",
            "out.json",
        ])
        .expect("parses");
        let Command::Profile {
            build,
            cycles,
            seed,
            kernel,
            chrome_trace,
            ..
        } = cli.command
        else {
            panic!("expected profile");
        };
        assert_eq!(build.ports, 64);
        assert_eq!(cycles, 2_000);
        assert_eq!(seed, 42);
        assert_eq!(kernel, SimKernel::Parallel { workers: 4 });
        assert_eq!(chrome_trace.as_deref(), Some("out.json"));
        // Defaults mirror `sim`: event kernel, no trace file.
        let cli = Cli::parse(["profile"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Profile {
                kernel: SimKernel::EventDriven,
                chrome_trace: None,
                ..
            }
        ));
        // `profile` has no fault or VCD surface.
        assert!(Cli::parse(["profile", "--faults", "soak"]).is_err());
        assert!(Cli::parse(["profile", "--vcd", "x.vcd"]).is_err());
    }

    #[test]
    fn stats_parses_format_and_output() {
        let cli = Cli::parse([
            "stats", "--ports", "16", "--format", "csv", "--out", "x.csv",
        ])
        .expect("parses");
        let Command::Stats {
            build, format, out, ..
        } = cli.command
        else {
            panic!("expected stats");
        };
        assert_eq!(build.ports, 16);
        assert_eq!(format, StatsFormat::Csv);
        assert_eq!(out.as_deref(), Some("x.csv"));
        // Default format is JSON; unknown formats are rejected.
        let cli = Cli::parse(["stats"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Stats {
                format: StatsFormat::Json,
                out: None,
                ..
            }
        ));
        assert!(Cli::parse(["stats", "--format", "xml"]).is_err());
    }

    #[test]
    fn trace_parses_capacity_and_limit() {
        let cli = Cli::parse(["trace", "--capacity", "128", "--limit", "10"]).expect("parses");
        let Command::Trace {
            capacity,
            limit,
            vcd,
            ..
        } = cli.command
        else {
            panic!("expected trace");
        };
        assert_eq!(capacity, 128);
        assert_eq!(limit, 10);
        assert_eq!(vcd, None);
        // A zero-capacity ring would panic downstream; reject it here.
        assert!(Cli::parse(["trace", "--capacity", "0"]).is_err());
    }

    #[test]
    fn fault_specs_parse_soak_scaled_and_explicit() {
        let soak = parse_fault_spec("soak").expect("parses");
        assert_eq!(soak.rates, FaultRates::soak());
        assert_eq!(soak.window, None);
        let scaled = parse_fault_spec("soak*0.5").expect("parses");
        assert_eq!(scaled.rates, FaultRates::soak().scaled(0.5));
        let explicit = parse_fault_spec("jitter=0.1,drop=0.01,window=100:900").expect("parses");
        assert!((explicit.rates.link_jitter - 0.1).abs() < 1e-12);
        assert!((explicit.rates.flit_drop - 0.01).abs() < 1e-12);
        assert_eq!(explicit.rates.skew_spike, 0.0);
        assert_eq!(explicit.window, Some((100, 900)));
        // Malformed specs are rejected with a hint.
        assert!(parse_fault_spec("jitter").is_err());
        assert!(parse_fault_spec("glitch=0.1").is_err());
        assert!(parse_fault_spec("jitter=1.5").is_err());
        assert!(parse_fault_spec("window=9:9").is_err());
        assert!(parse_fault_spec("soak*-1").is_err());
    }

    #[test]
    fn clock_fault_specs_parse_and_unknown_keys_name_the_valid_set() {
        let clock = parse_fault_spec("clock-soak").expect("parses");
        assert_eq!(clock.rates, FaultRates::clock_soak());
        let scaled = parse_fault_spec("clock-soak*0.5").expect("parses");
        assert_eq!(scaled.rates, FaultRates::clock_soak().scaled(0.5));
        let explicit = parse_fault_spec("clock-outage=0.001,pulse-drop=0.002,skew-drift=0.003")
            .expect("parses");
        assert!((explicit.rates.clock_outage - 0.001).abs() < 1e-12);
        assert!((explicit.rates.pulse_drop - 0.002).abs() < 1e-12);
        assert!((explicit.rates.skew_drift - 0.003).abs() < 1e-12);
        // Underscore spellings are accepted too.
        let underscored = parse_fault_spec("clock_outage=0.01").expect("parses");
        assert!((underscored.rates.clock_outage - 0.01).abs() < 1e-12);
        // An unknown key fails with an error naming every valid kind.
        let err = parse_fault_spec("clock=0.1").expect_err("unknown key");
        for key in [
            "jitter",
            "spike",
            "corrupt",
            "drop",
            "stuck",
            "lost",
            "outage",
            "clock-outage",
            "pulse-drop",
            "skew-drift",
            "window",
        ] {
            assert!(err.0.contains(key), "error must name {key:?}: {err}");
        }
    }

    #[test]
    fn clock_backend_flag_parses_and_rejects_unknowns() {
        let cli = Cli::parse(["info", "--clock-backend", "redundant"]).expect("parses");
        let Command::Info(build) = cli.command else {
            panic!("expected info");
        };
        assert_eq!(build.clock, ClockBackend::Redundant);
        let err = Cli::parse(["info", "--clock-backend", "mesh"]).expect_err("unknown");
        assert!(err.0.contains("forwarded"), "{err}");
        assert!(err.0.contains("redundant"), "{err}");
    }

    #[test]
    fn faults_subcommand_parses_with_defaults() {
        let cli = Cli::parse(["faults", "--ports", "16", "--spec", "soak*2"]).expect("parses");
        let Command::Faults {
            build,
            cycles,
            seed,
            spec,
            ..
        } = cli.command
        else {
            panic!("expected faults");
        };
        assert_eq!(build.ports, 16);
        assert_eq!(cycles, 10_000);
        assert_eq!(seed, 42);
        assert_eq!(spec.rates, FaultRates::soak().scaled(2.0));
        // `sim --faults` carries the same spec grammar.
        let cli = Cli::parse(["sim", "--faults", "drop=0.01"]).expect("parses");
        let Command::Sim { faults, .. } = cli.command else {
            panic!("expected sim");
        };
        let faults = faults.expect("spec present");
        assert!((faults.rates.flit_drop - 0.01).abs() < 1e-12);
    }

    #[test]
    fn explore_parses_grid_jobs_and_cache_flags() {
        let cli = Cli::parse([
            "explore",
            "--grid",
            "freq=0.8,1.0;corner=nominal",
            "--jobs",
            "4",
            "--cache-dir",
            ".cache",
            "--quiet",
        ])
        .expect("parses");
        let Command::Explore {
            grid,
            jobs,
            workers,
            cache_dir,
            resume,
            out,
            quiet,
            profile,
            speculate,
            server,
            priority,
        } = cli.command
        else {
            panic!("expected explore");
        };
        assert_eq!(server, None);
        assert_eq!(priority, 0);
        assert_eq!(speculate, None);
        assert_eq!(grid, "freq=0.8,1.0;corner=nominal");
        assert_eq!(jobs, 4);
        assert_eq!(workers, None);
        assert_eq!(cache_dir.as_deref(), Some(".cache"));
        assert!(!resume);
        assert_eq!(out, "BENCH_explore.json");
        assert!(quiet);
        assert!(!profile);
        // `--profile` attaches per-job perf telemetry to the sweep.
        let cli = Cli::parse(["explore", "--profile"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Explore { profile: true, .. }
        ));
        // `--workers` selects the parallel simulation kernel per job.
        let cli = Cli::parse(["explore", "--workers", "2"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Explore {
                workers: Some(2),
                ..
            }
        ));
        // Defaults: serial, no cache, standard output file.
        let cli = Cli::parse(["explore"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Explore {
                jobs: 1,
                cache_dir: None,
                resume: false,
                quiet: false,
                ..
            }
        ));
        // `--resume` is a switch; zero workers make no sense.
        let cli = Cli::parse(["explore", "--resume"]).expect("parses");
        assert!(matches!(cli.command, Command::Explore { resume: true, .. }));
        assert!(Cli::parse(["explore", "--jobs", "0"]).is_err());
    }

    #[test]
    fn explore_server_mode_parses_and_rejects_execution_flags() {
        let cli = Cli::parse([
            "explore",
            "--server",
            "127.0.0.1:7070",
            "--grid",
            "freq=0.8,1.0",
            "--priority",
            "3",
        ])
        .expect("parses");
        let Command::Explore {
            server, priority, ..
        } = cli.command
        else {
            panic!("expected explore");
        };
        assert_eq!(server.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(priority, 3);
        // Execution flags are the daemon's decisions, not the client's.
        for conflict in [
            ["--jobs", "4"],
            ["--workers", "2"],
            ["--cache-dir", ".c"],
            ["--resume", "true"],
            ["--profile", "true"],
        ] {
            let args = [
                "explore",
                "--server",
                "127.0.0.1:7070",
                conflict[0],
                conflict[1],
            ];
            let err = Cli::parse(args).expect_err("conflicting flag");
            assert!(err.0.contains("daemon"), "{err}");
        }
        // Priority only means something to a daemon.
        assert!(Cli::parse(["explore", "--priority", "3"]).is_err());
    }

    #[test]
    fn serve_parses_with_defaults_and_rejects_degenerates() {
        let cli = Cli::parse(["serve"]).expect("parses");
        let Command::Serve {
            addr,
            state_dir,
            workers,
            queue_limit,
        } = cli.command
        else {
            panic!("expected serve");
        };
        assert_eq!(addr, "127.0.0.1:7070");
        assert_eq!(state_dir, icnoc_explore::DEFAULT_CACHE_DIR);
        assert_eq!(workers, 2);
        assert_eq!(queue_limit, 256);
        let cli = Cli::parse([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            "/tmp/x",
            "--workers",
            "4",
            "--queue-limit",
            "8",
        ])
        .expect("parses");
        assert!(matches!(
            cli.command,
            Command::Serve {
                workers: 4,
                queue_limit: 8,
                ..
            }
        ));
        assert!(Cli::parse(["serve", "--workers", "0"]).is_err());
        assert!(Cli::parse(["serve", "--queue-limit", "0"]).is_err());
    }

    #[test]
    fn kernel_flag_selects_the_stepper() {
        let cli = Cli::parse(["sim", "--kernel", "dense"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                kernel: SimKernel::Dense,
                ..
            }
        ));
        // The event kernel is the default, under either spelling.
        let cli = Cli::parse(["sim"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                kernel: SimKernel::EventDriven,
                ..
            }
        ));
        let cli = Cli::parse(["stats", "--kernel", "event-driven"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Stats {
                kernel: SimKernel::EventDriven,
                ..
            }
        ));
        assert!(Cli::parse(["sim", "--kernel", "sparse"]).is_err());
        // The parallel kernel takes a worker count; 0 (and the default)
        // mean one worker per core.
        let cli = Cli::parse(["sim", "--kernel", "parallel", "--workers", "4"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Sim {
                kernel: SimKernel::Parallel { workers: 4 },
                ..
            }
        ));
        let cli = Cli::parse(["faults", "--kernel", "parallel"]).expect("parses");
        assert!(matches!(
            cli.command,
            Command::Faults {
                kernel: SimKernel::Parallel { workers: 0 },
                ..
            }
        ));
        // --workers without the parallel kernel is a contradiction.
        assert!(Cli::parse(["sim", "--workers", "4"]).is_err());
        assert!(Cli::parse(["sim", "--kernel", "event", "--workers", "4"]).is_err());
        assert!(Cli::parse(["sim", "--kernel", "parallel", "--workers", "x"]).is_err());
    }

    #[test]
    fn pattern_specs_round_trip() {
        assert_eq!(
            parse_pattern("uniform:0.25").expect("parses"),
            TrafficPattern::Uniform { rate: 0.25 }
        );
        assert_eq!(
            parse_pattern("saturate").expect("parses"),
            TrafficPattern::Saturate
        );
        assert_eq!(
            parse_pattern("bursty:10:90").expect("parses"),
            TrafficPattern::Bursty {
                burst: 10,
                idle: 90
            }
        );
        assert_eq!(
            parse_pattern("memory:0.1").expect("parses"),
            TrafficPattern::RandomMemory { rate: 0.1 }
        );
        assert!(parse_pattern("wavy:1").is_err());
        assert!(parse_pattern("uniform:abc").is_err());
    }
}
