//! The `icnoc` command-line tool. See [`icnoc_cli`] for the implementation.

fn main() {
    let cli = match icnoc_cli::Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match icnoc_cli::run(&cli) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
