//! Command execution: turns a parsed [`Cli`] into output text.

use crate::args::{BuildOpts, Cli, CliError, Command, FaultSpec, StatsFormat};
use icnoc::{System, SystemBuilder};
use icnoc_explore::{run_sweep, GridSpec, JsonValue, ResultCache, SweepOptions, DEFAULT_CACHE_DIR};
use icnoc_serve::{client, RegistryConfig, Server};
use icnoc_sim::{
    FaultPlan, Network, SimKernel, TileTraffic, TraceEventKind, TrafficPattern, VcdTrace,
};
use icnoc_timing::{PipelineTimingModel, ProcessVariation};
use icnoc_units::{Gigahertz, Millimeters};
use std::fmt::Write as _;
use std::io::Write as _;

const USAGE: &str = "\
icnoc — build, verify and simulate IC-NoC systems (DATE 2007 reproduction)

USAGE:
  icnoc info   [--ports 64] [--kind binary|quad] [--freq 1.0] [--die 10] [--width 32]
               [--clock-backend forwarded|redundant]
  icnoc verify [build opts] [--variation 0.3] [--sigma 0.05] [--top 10]
  icnoc sim    [build opts] [--pattern uniform:0.2] [--cycles 2000] [--seed 42]
               [--packet-len 1] [--tiles OUTSTANDING:SERVICE] [--vcd out.vcd]
               [--diagnose] [--faults SPEC] [--kernel event|dense|parallel] [--workers N]
               [--speculate [K]] [--profile] [--chrome-trace trace.json]
  icnoc profile [build opts] [--pattern uniform:0.2] [--cycles 2000] [--seed 42]
               [--packet-len 1] [--tiles OUTSTANDING:SERVICE]
               [--kernel event|dense|parallel] [--workers N] [--speculate [K]]
               [--chrome-trace trace.json]
  icnoc stats  [build opts] [sim opts] [--format json|csv] [--out stats.json]
  icnoc trace  [build opts] [sim opts] [--capacity 4096] [--limit 40] [--vcd out.vcd]
  icnoc faults [build opts] [--pattern uniform:0.2] [--cycles 10000] [--seed 42]
               [--packet-len 1] [--spec soak] [--kernel event|dense|parallel] [--workers N]
               [--speculate [K]]
  icnoc yield  [build opts] [--variation 0.2] [--sigma 0.05] [--samples 200] [--seed 42]
  icnoc fig7   [--max-mm 3.0] [--step-mm 0.1]
  icnoc explore [--grid SPEC] [--jobs 1] [--workers N] [--cache-dir DIR] [--resume]
               [--out BENCH_explore.json] [--quiet] [--profile] [--speculate [K]]
               [--server ADDR] [--priority N]
  icnoc serve  [--addr 127.0.0.1:7070] [--state-dir DIR] [--workers 2]
               [--queue-limit 256]

PATTERNS: uniform:R  neighbor:R  memory:R  hotspot:R:TARGET:F  bursty:B:I  saturate  silent
FAULTS:   soak  clock-soak  soak*F  clock-soak*F  key=rate[,key=rate...] over
          jitter, spike, corrupt, drop, stuck, lost, outage, clock-outage,
          pulse-drop, skew-drift, plus window=START:END (ticks)
GRID:     `;`-separated axes of `name=v1,v2,...` (ranges `lo..hi/n`) over kind,
          ports, die, width, freq (GHz), thalf (ps), corner, pattern, cycles,
          soak, seed, clock (forwarded|redundant) —
          e.g. \"freq=0.8..1.2/5;corner=nominal,slow30;soak=1\"
KERNEL:   event (default, activity-list stepping), dense (full scan, the
          differential-testing oracle) or parallel (subtree-sharded worker
          threads; --workers N, 0 = one per core) — all bit-identical per
          seed. explore --workers N simulates each job with the parallel
          kernel at N workers without changing results or cache keys.
          --speculate [K] (or ICNOC_SPECULATE=1|K) lets the parallel
          kernel run cut-crossing ticks optimistically in windows of up
          to K ticks (default 16), rolling back and replaying invalidated
          windows — committed results stay bit-identical
PROFILE:  sim --profile (or the profile subcommand) attaches the kernel
          profiler: per-shard step/wake counters, a load-imbalance ratio
          and the barrier-overhead fraction. --chrome-trace FILE writes a
          trace-event timeline loadable at ui.perfetto.dev. explore
          --profile adds per-job perf telemetry to the sweep JSON
SERVE:    `icnoc serve` runs a resident sweep daemon on a local TCP
          socket (writes the bound address to <state-dir>/endpoint);
          `icnoc explore --server ADDR` submits the grid there instead
          of executing locally. Identical jobs from concurrent clients
          execute once, accepted sweeps are journalled for resume after
          a crash, and a full queue answers a structured retry-after";

/// Executes `cli`, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] when the system cannot be built or an output file
/// cannot be written.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Info(build) => {
            let sys = build_system(build)?;
            Ok(sys.summary().to_string())
        }
        Command::Verify {
            build,
            variation,
            sigma,
            top,
        } => {
            let sys = build_system(build)?;
            let var = ProcessVariation::new(*variation, *sigma);
            let verification = sys.verify_under(var, 3.0);
            let mut out = verification.sta_report(*top);
            if !verification.is_timing_safe() {
                let safe = sys.max_safe_frequency(var, 3.0);
                let _ = write!(
                    out,
                    "\n  hint: this variation is safe at {safe:.3} or below \
                     (graceful degradation)"
                );
            }
            Ok(out)
        }
        Command::Sim {
            build,
            pattern,
            cycles,
            seed,
            packet_len,
            tiles,
            vcd,
            diagnose,
            faults,
            kernel,
            speculate,
            profile,
            chrome_trace,
        } => {
            let sys = build_system(build)?;
            let mut net = build_network(&sys, pattern, *tiles, *seed, *packet_len, *kernel);
            net.set_speculation(*speculate);
            if let Some(spec) = faults {
                net.enable_faults(fault_plan(&sys, spec, *seed));
            }
            if *profile || chrome_trace.is_some() {
                net.enable_profiling();
            }
            warn_fallback(&net);

            let mut trace = vcd.as_ref().map(|_| VcdTrace::new(&net));
            if let Some(trace) = &mut trace {
                for _ in 0..(*cycles).min(200) * 2 {
                    trace.sample(&net);
                    net.step();
                }
            }
            let already = net.tick() / 2;
            net.run_cycles(cycles.saturating_sub(already));
            // Recovery chains (timeout plus bounded backoff per retry)
            // need a drain budget well beyond the traffic itself.
            let budget = if faults.is_some() {
                (*cycles).max(1_000).saturating_mul(4)
            } else {
                (*cycles).max(1_000)
            };
            let drained = net.drain(budget);
            let report = net.report();

            let mut out = String::new();
            let _ = writeln!(out, "{report}");
            if report.responses > 0 {
                let _ = writeln!(
                    out,
                    "round trips: {} responses, mean {:.1} cycles (max {:.1})",
                    report.responses,
                    report.round_trip.mean_cycles(),
                    report.round_trip.max_cycles()
                );
            }
            let _ = writeln!(out, "{}", sys.power_report(&report));
            if let Some(recovery) = &report.recovery {
                let _ = writeln!(out, "{recovery}");
            }
            let _ = write!(
                out,
                "correct: {} (lost {}, dup {}, reordered {}, interleaved {})",
                report.is_correct(),
                report.lost(),
                report.duplicated,
                report.reordered,
                report.interleaved
            );
            if *diagnose {
                let holders = net.diagnose_stall();
                if holders.is_empty() {
                    let _ = write!(out, "\ndiagnose: drained clean, no flits in flight");
                } else {
                    let _ = write!(
                        out,
                        "\ndiagnose: {} element(s) still hold flits{}",
                        holders.len(),
                        if drained { "" } else { " (drain timed out)" }
                    );
                    for h in holders {
                        let _ = write!(out, "\n  {h}");
                    }
                }
            }
            if let (Some(path), Some(trace)) = (vcd, trace) {
                std::fs::write(path, trace.render(half_period_ps(build)))
                    .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                let _ = write!(out, "\nwaveform written to {path}");
            }
            if let Some(perf) = &report.perf {
                let _ = write!(out, "\n{}", perf.summary());
                if let Some(path) = chrome_trace {
                    std::fs::write(path, perf.chrome_trace_json())
                        .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                    let _ = write!(out, "\nchrome trace written to {path}");
                }
            }
            Ok(out)
        }
        Command::Profile {
            build,
            pattern,
            cycles,
            seed,
            packet_len,
            tiles,
            kernel,
            speculate,
            chrome_trace,
        } => {
            let sys = build_system(build)?;
            let mut net = build_network(&sys, pattern, *tiles, *seed, *packet_len, *kernel);
            net.set_speculation(*speculate);
            net.enable_profiling();
            warn_fallback(&net);
            net.run_cycles(*cycles);
            net.drain((*cycles).max(1_000));
            let report = net.report();
            let perf = report.perf.as_ref().expect("profiling was enabled");

            let mut out = String::new();
            let _ = writeln!(out, "{report}");
            let _ = write!(out, "{}", perf.summary());
            if let Some(path) = chrome_trace {
                std::fs::write(path, perf.chrome_trace_json())
                    .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                let _ = write!(out, "\nchrome trace written to {path}");
            }
            Ok(out)
        }
        Command::Stats {
            build,
            pattern,
            cycles,
            seed,
            packet_len,
            tiles,
            format,
            out,
            kernel,
        } => {
            let sys = build_system(build)?;
            let mut net = build_network(&sys, pattern, *tiles, *seed, *packet_len, *kernel);
            net.enable_counters();
            net.run_cycles(*cycles);
            net.drain((*cycles).max(1_000));
            let report = net.report();
            let obs = report
                .observability
                .as_ref()
                .expect("counters were enabled");
            let text = match format {
                StatsFormat::Json => obs.to_json(),
                StatsFormat::Csv => format!(
                    "# elements\n{}\n# flows\n{}",
                    obs.elements_csv().trim_end(),
                    obs.flows_csv().trim_end()
                ),
            };
            match out {
                Some(path) => {
                    std::fs::write(path, &text)
                        .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                    Ok(format!("stats written to {path}"))
                }
                None => Ok(text.trim_end().to_owned()),
            }
        }
        Command::Trace {
            build,
            pattern,
            cycles,
            seed,
            packet_len,
            capacity,
            limit,
            vcd,
            kernel,
        } => {
            let sys = build_system(build)?;
            let mut net = build_network(&sys, pattern, None, *seed, *packet_len, *kernel);
            net.enable_event_buffer(*capacity);

            let mut trace = vcd.as_ref().map(|_| VcdTrace::new(&net));
            if let Some(trace) = &mut trace {
                for _ in 0..(*cycles).min(200) * 2 {
                    trace.sample(&net);
                    net.step();
                }
            }
            let already = net.tick() / 2;
            net.run_cycles(cycles.saturating_sub(already));

            let buffer = net.event_buffer().expect("event buffer was enabled");
            let events = buffer.events();
            let shown = (*limit).min(events.len());
            let mut out = String::new();
            let _ = write!(
                out,
                "{} event(s) retained ({} overwritten), showing last {shown}:",
                events.len(),
                buffer.overwritten()
            );
            for ev in &events[events.len() - shown..] {
                let label = net.element_label(ev.element).unwrap_or("?");
                let _ = write!(
                    out,
                    "\n  [{:>8}] {:<16} {:<12} flit {}->{} seq {}",
                    ev.tick,
                    describe_kind(ev.kind),
                    label,
                    ev.flit.src.0,
                    ev.flit.dest.0,
                    ev.flit.seq
                );
            }
            if let (Some(path), Some(trace)) = (vcd, trace) {
                std::fs::write(path, trace.render(half_period_ps(build)))
                    .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                let _ = write!(out, "\nwaveform written to {path}");
            }
            Ok(out)
        }
        Command::Yield {
            build,
            variation,
            sigma,
            samples,
            seed,
        } => {
            let sys = build_system(build)?;
            let var = ProcessVariation::new(*variation, *sigma);
            let y = sys.yield_analysis(var, *samples, *seed);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "yield over {} dies (systematic +{:.0}%, sigma {:.0}%):",
                y.samples(),
                variation * 100.0,
                sigma * 100.0
            );
            let _ = writeln!(
                out,
                "  fmax: min {:.3}, median {:.3}, max {:.3}",
                y.min_fmax(),
                y.median_fmax(),
                y.max_fmax()
            );
            for f in [0.6, 0.8, 1.0, 1.2] {
                let _ = writeln!(
                    out,
                    "  yield at {f:.1} GHz: {:>5.1}%",
                    y.yield_at(Gigahertz::new(f)) * 100.0
                );
            }
            let _ = write!(
                out,
                "  99% yield frequency: {:.3}",
                y.frequency_at_yield(0.99)
            );
            Ok(out)
        }
        Command::Faults {
            build,
            pattern,
            cycles,
            seed,
            packet_len,
            spec,
            kernel,
            speculate,
        } => {
            let sys = build_system(build)?;
            let mut net = build_network(&sys, pattern, None, *seed, *packet_len, *kernel);
            net.set_speculation(*speculate);
            net.enable_faults(fault_plan(&sys, spec, *seed));
            warn_fallback(&net);
            net.run_cycles(*cycles);
            let drained = net.drain_or_diagnose((*cycles).max(1_000).saturating_mul(4));
            let report = net.report();
            let recovery = report.recovery.expect("faults were enabled");

            let mut out = String::new();
            let _ = writeln!(
                out,
                "fault soak: {} cycles at seed {}, {} flits delivered, {} explicitly lost",
                cycles, seed, report.delivered, recovery.flits_abandoned
            );
            let _ = writeln!(out, "{recovery}");
            let _ = writeln!(
                out,
                "integrity: {} silently corrupted payload(s) reached a consumer",
                report.integrity_failures
            );
            if let Err(timeout) = &drained {
                let _ = writeln!(out, "drain: {timeout}");
            }
            let accounted = drained.is_ok()
                && recovery.conserves()
                && recovery.pending == 0
                && report.integrity_failures == 0;
            let _ = write!(
                out,
                "verdict: {}",
                if accounted {
                    "PASS — every fault detected and recovered or explicitly lost"
                } else {
                    "FAIL — unaccounted faults remain"
                }
            );
            Ok(out)
        }
        Command::Explore {
            grid,
            jobs,
            workers,
            cache_dir,
            resume,
            out,
            quiet,
            profile,
            speculate,
            server,
            priority,
        } => {
            if let Some(addr) = server {
                return explore_remote(addr, grid, *priority, out, *quiet);
            }
            let spec = GridSpec::parse(grid).map_err(|e| CliError(e.to_string()))?;
            // The parallel kernel cannot host per-job fault injection;
            // those grid points silently run the sequential fallback, so
            // name the cause up front (mirrors `sim`/`faults`).
            if workers.is_some() && spec.resolve().iter().any(|j| j.soak > 0.0) {
                eprintln!(
                    "warning: parallel kernel running the sequential fallback \
                     for soak > 0 grid points: fault-plan"
                );
            }
            // `--resume` without an explicit directory caches in the
            // default location, so a rerun picks up where it left off.
            let cache_path = cache_dir
                .clone()
                .or_else(|| resume.then(|| DEFAULT_CACHE_DIR.to_owned()));
            let cache = match &cache_path {
                Some(dir) => Some(
                    ResultCache::open(std::path::Path::new(dir))
                        .map_err(|e| CliError(format!("cannot open cache {dir:?}: {e}")))?,
                ),
                None => None,
            };
            let kernel = match workers {
                None => SimKernel::default(),
                Some(w) => SimKernel::Parallel { workers: *w },
            };
            let opts = SweepOptions {
                jobs: *jobs,
                cache,
                kernel,
                profile: *profile,
                speculate: *speculate,
            };
            let quiet = *quiet;
            let (analysis, stats) = run_sweep(&spec, &opts, |done, total| {
                if !quiet {
                    eprint!("\rexplore: {done}/{total} job(s)");
                    let _ = std::io::stderr().flush();
                }
            });
            if !quiet {
                eprintln!();
            }
            // Cache telemetry goes to stderr: stdout stays byte-stable
            // for the documented summary lines, and ignored entries
            // (corrupt or config-mismatched) deserve an explicit trace.
            if let Some(cache) = &opts.cache {
                for mismatch in cache.take_mismatches() {
                    eprintln!("warning: {mismatch}");
                }
                if !quiet {
                    eprintln!("cache: {}", stats.cache);
                }
            }
            std::fs::write(out, analysis.to_json().to_pretty() + "\n")
                .map_err(|e| CliError(format!("cannot write {out:?}: {e}")))?;
            let mut text = analysis.render();
            let _ = write!(
                text,
                "\nsweep: {} job(s) — {} executed, {} cached, {} failed; JSON written to {out}",
                stats.total, stats.executed, stats.cached, stats.failed
            );
            if let Some(dir) = &cache_path {
                let _ = write!(text, "\ncache: {dir}");
            }
            Ok(text)
        }
        Command::Serve {
            addr,
            state_dir,
            workers,
            queue_limit,
        } => {
            let config = RegistryConfig {
                state_dir: std::path::PathBuf::from(state_dir),
                workers: *workers,
                queue_limit: *queue_limit,
            };
            let server = Server::bind(addr, &config)
                .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
            let bound = server.addr().to_owned();
            eprintln!(
                "serve: listening on {bound} — state {state_dir}, {workers} worker(s), \
                 queue limit {queue_limit}"
            );
            let resumed = server.registry().resident_sweeps();
            if !resumed.is_empty() {
                eprintln!(
                    "serve: resumed {} incomplete sweep(s) from the ledger: {}",
                    resumed.len(),
                    resumed.join(", ")
                );
            }
            server
                .run()
                .map_err(|e| CliError(format!("serve failed: {e}")))?;
            Ok(format!("serve: stopped ({bound})"))
        }
        Command::Fig7 { max_mm, step_mm } => {
            let model = PipelineTimingModel::nominal_90nm();
            let mut out = String::from("length (mm)  f_max (GHz)  binding\n");
            for p in model.fig7_curve(Millimeters::new(*max_mm), Millimeters::new(*step_mm)) {
                let _ = writeln!(
                    out,
                    "{:>11.2}  {:>11.3}  {}",
                    p.length.value(),
                    p.frequency.value(),
                    p.binding
                );
            }
            Ok(out.trim_end().to_owned())
        }
    }
}

/// `explore --server ADDR`: submits the grid to a resident daemon
/// instead of executing locally, streams progress to stderr, and writes
/// the daemon's result document — byte-identical (up to `wall_ms`
/// lines) to what offline explore would produce — to `out`.
fn explore_remote(
    addr: &str,
    grid: &str,
    priority: u32,
    out: &str,
    quiet: bool,
) -> Result<String, CliError> {
    let ticket = client::submit(addr, grid, priority).map_err(|e| CliError(remote_err(e)))?;
    if !quiet {
        eprintln!(
            "explore: sweep {} accepted by {addr} — {} job(s): {} queued, {} cached, {} deduped",
            ticket.sweep, ticket.total, ticket.queued, ticket.cached, ticket.deduped
        );
    }
    client::stream(addr, &ticket.sweep, |line| {
        if quiet {
            return;
        }
        if let Ok(event) = JsonValue::parse(line) {
            if event.get("event").and_then(JsonValue::as_str) == Some("row") {
                let count = |k| event.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
                eprint!("\rexplore: {}/{} job(s)", count("done"), count("total"));
                let _ = std::io::stderr().flush();
            }
        }
    })
    .map_err(|e| CliError(remote_err(e)))?;
    if !quiet {
        eprintln!();
    }
    let result = client::result(addr, &ticket.sweep).map_err(|e| CliError(remote_err(e)))?;
    std::fs::write(out, &result).map_err(|e| CliError(format!("cannot write {out:?}: {e}")))?;
    Ok(format!(
        "sweep {}: {} job(s) — {} queued, {} cached, {} deduped on {addr}; JSON written to {out}",
        ticket.sweep, ticket.total, ticket.queued, ticket.cached, ticket.deduped
    ))
}

/// Renders a client-side failure; queue-full rejects surface their
/// structured `retry_after_ms` so callers know when to come back.
fn remote_err(e: client::ClientError) -> String {
    if let client::ClientError::Rejected { status: 429, body } = &e {
        let retry = JsonValue::parse(body)
            .ok()
            .and_then(|v| v.get("retry_after_ms").and_then(JsonValue::as_f64));
        if let Some(ms) = retry {
            return format!("{e}; retry in {}ms", ms as u64);
        }
    }
    e.to_string()
}

/// Builds the simulated network shared by `sim`, `stats` and `trace`:
/// one copy of `pattern` per port, optionally closed-loop tiles.
fn build_network(
    sys: &System,
    pattern: &TrafficPattern,
    tiles: Option<(usize, u64)>,
    seed: u64,
    packet_len: u32,
    kernel: SimKernel,
) -> Network {
    let patterns = vec![pattern.clone(); sys.tree().num_ports()];
    let mut net = match tiles {
        Some((max_outstanding, service_cycles)) => sys.tile_network_with_kernel(
            &patterns,
            TileTraffic {
                max_outstanding,
                service_cycles,
            },
            seed,
            kernel,
        ),
        None => sys.network_with_kernel(&patterns, seed, kernel),
    };
    net.set_packet_length(packet_len);
    net
}

fn describe_kind(kind: TraceEventKind) -> String {
    match kind {
        TraceEventKind::Injected => "injected".to_owned(),
        TraceEventKind::HopForwarded => "forwarded".to_owned(),
        TraceEventKind::Blocked => "blocked".to_owned(),
        TraceEventKind::Arbitrated { contenders } => format!("arbitrated({contenders})"),
        TraceEventKind::Delivered => "delivered".to_owned(),
        TraceEventKind::Dropped { cause } => format!("dropped({})", cause.label()),
        TraceEventKind::Corrupted => "corrupted".to_owned(),
        TraceEventKind::TimingViolation => "timing-violation".to_owned(),
        TraceEventKind::Retransmitted => "retransmitted".to_owned(),
        TraceEventKind::FrequencyBackoff => "freq-backoff".to_owned(),
    }
}

/// Names the sequential-fallback cause on stderr when the requested
/// parallel kernel cannot actually run in parallel (fault injection or
/// trace sinks are attached). Stderr keeps stdout byte-stable for
/// kernel-differential comparisons; silent on genuinely parallel runs
/// and on the sequential kernels.
fn warn_fallback(net: &Network) {
    if let Some(cause) = net.fallback_cause() {
        eprintln!(
            "warning: parallel kernel running the sequential fallback: {} — {cause}",
            cause.label()
        );
    }
    // A softer degradation: the parallel kernel *is* running, but every
    // lookahead-0 window pays a synchronized mailbox tick because
    // speculation is off.
    if let Some(cause) = net.speculation_fallback() {
        eprintln!(
            "warning: parallel kernel running per-tick mailbox mode in \
             cut-crossing regimes: {} — {cause}",
            cause.label()
        );
    }
}

/// A system-matched [`FaultPlan`] armed with the parsed spec.
fn fault_plan(sys: &System, spec: &FaultSpec, seed: u64) -> FaultPlan {
    let mut plan = sys.fault_plan(seed).with_rates(spec.rates);
    if let Some((start, end)) = spec.window {
        plan = plan.with_window(start, end);
    }
    plan
}

fn build_system(build: &BuildOpts) -> Result<System, CliError> {
    SystemBuilder::new(build.kind, build.ports)
        .frequency(Gigahertz::new(build.freq))
        .die(Millimeters::new(build.die), Millimeters::new(build.die))
        .width_bits(build.width)
        .clock_backend(build.clock)
        .build()
        .map_err(|e| CliError(e.to_string()))
}

fn half_period_ps(build: &BuildOpts) -> u64 {
    (500.0 / build.freq).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        run(&Cli::parse(line.iter().copied()).expect("parses"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).expect("runs");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn info_prints_summary() {
        let out = run_line(&["info", "--ports", "16"]).expect("runs");
        assert!(out.contains("16 ports"));
        assert!(out.contains("15 routers"));
    }

    #[test]
    fn verify_prints_sta_report() {
        let out = run_line(&["verify", "--ports", "16"]).expect("runs");
        assert!(out.contains("TIMING SAFE"), "{out}");
        // Unsafe corner gets the derating hint.
        let out = run_line(&["verify", "--ports", "16", "--variation", "1.5"]).expect("runs");
        assert!(out.contains("TIMING UNSAFE"), "{out}");
        assert!(out.contains("hint"), "{out}");
    }

    #[test]
    fn sim_reports_correctness_and_power() {
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--pattern",
            "uniform:0.2",
            "--cycles",
            "300",
        ])
        .expect("runs");
        assert!(out.contains("correct: true"), "{out}");
        assert!(out.contains("power:"), "{out}");
    }

    #[test]
    fn closed_loop_sim_reports_round_trips() {
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--pattern",
            "neighbor:0.2",
            "--cycles",
            "500",
            "--tiles",
            "4:5",
        ])
        .expect("runs");
        assert!(out.contains("round trips"), "{out}");
        assert!(out.contains("correct: true"), "{out}");
    }

    #[test]
    fn sim_diagnose_reports_clean_drain() {
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--pattern",
            "uniform:0.2",
            "--cycles",
            "200",
            "--diagnose",
        ])
        .expect("runs");
        assert!(out.contains("diagnose: drained clean"), "{out}");
    }

    #[test]
    fn sim_profile_prints_the_shard_table() {
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--pattern",
            "uniform:0.3",
            "--cycles",
            "300",
            "--kernel",
            "parallel",
            "--workers",
            "2",
            "--profile",
        ])
        .expect("runs");
        assert!(out.contains("correct: true"), "{out}");
        assert!(out.contains("load imbalance:"), "{out}");
        assert!(out.contains("barrier overhead:"), "{out}");
    }

    #[test]
    fn profile_subcommand_writes_a_chrome_trace() {
        let dir = std::env::temp_dir().join("icnoc_cli_test_profile");
        let path = dir.join("trace.json");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_line(&[
            "profile",
            "--ports",
            "16",
            "--pattern",
            "uniform:0.3",
            "--cycles",
            "300",
            "--kernel",
            "parallel",
            "--workers",
            "2",
            "--chrome-trace",
            path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        assert!(out.contains("load imbalance:"), "{out}");
        assert!(out.contains("chrome trace written"), "{out}");
        let json = std::fs::read_to_string(&path).expect("file exists");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_covers_the_sequential_kernels_too() {
        let out = run_line(&["profile", "--ports", "16", "--cycles", "200"]).expect("runs");
        assert!(out.contains("event kernel"), "{out}");
        assert!(out.contains("load imbalance:"), "{out}");
    }

    #[test]
    fn stats_exports_json_with_percentiles() {
        let out = run_line(&[
            "stats",
            "--ports",
            "64",
            "--pattern",
            "uniform:0.2",
            "--cycles",
            "500",
        ])
        .expect("runs");
        assert!(out.contains("\"elements\""), "{out}");
        assert!(out.contains("\"utilisation\""), "{out}");
        assert!(out.contains("\"p50\""), "{out}");
        assert!(out.contains("\"p99\""), "{out}");
    }

    #[test]
    fn stats_exports_csv_to_a_file() {
        let dir = std::env::temp_dir().join("icnoc_cli_test_stats");
        let path = dir.join("stats.csv");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_line(&[
            "stats",
            "--ports",
            "16",
            "--cycles",
            "300",
            "--format",
            "csv",
            "--out",
            path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        assert!(out.contains("stats written"), "{out}");
        let csv = std::fs::read_to_string(&path).expect("file exists");
        assert!(csv.contains("label,injected"), "{csv}");
        assert!(csv.contains("src,dest,delivered"), "{csv}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_dumps_labelled_events() {
        let out = run_line(&[
            "trace",
            "--ports",
            "8",
            "--pattern",
            "uniform:0.3",
            "--cycles",
            "100",
            "--limit",
            "20",
        ])
        .expect("runs");
        assert!(out.contains("event(s) retained"), "{out}");
        assert!(out.contains("showing last 20"), "{out}");
        assert!(
            out.contains("delivered") || out.contains("forwarded"),
            "{out}"
        );
        assert!(out.contains("flit "), "{out}");
    }

    #[test]
    fn faults_subcommand_accounts_for_every_injection() {
        let out = run_line(&["faults", "--ports", "16", "--cycles", "2000", "--seed", "7"])
            .expect("runs");
        assert!(out.contains("faults injected:"), "{out}");
        assert!(out.contains("conserves: true"), "{out}");
        assert!(out.contains("0 silently corrupted"), "{out}");
        assert!(out.contains("verdict: PASS"), "{out}");
    }

    #[test]
    fn sim_with_faults_prints_the_recovery_ledger() {
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--cycles",
            "500",
            "--faults",
            "drop=0.005,corrupt=0.005",
        ])
        .expect("runs");
        assert!(out.contains("faults injected:"), "{out}");
        assert!(out.contains("recovery:"), "{out}");
    }

    #[test]
    fn yield_prints_curve() {
        let out = run_line(&[
            "yield",
            "--ports",
            "16",
            "--variation",
            "0.2",
            "--samples",
            "50",
        ])
        .expect("runs");
        assert!(out.contains("yield at 1.0 GHz"), "{out}");
        assert!(out.contains("99% yield frequency"), "{out}");
    }

    #[test]
    fn fig7_prints_declining_curve() {
        let out = run_line(&["fig7", "--max-mm", "1.0", "--step-mm", "0.5"]).expect("runs");
        assert!(out.contains("1.800"), "{out}");
        assert!(out.contains("forward path"), "{out}");
    }

    #[test]
    fn explore_renders_pareto_front_and_writes_json() {
        let dir = std::env::temp_dir().join("icnoc_cli_test_explore");
        let path = dir.join("explore.json");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_line(&[
            "explore",
            "--grid",
            "ports=16;cycles=200;freq=0.9,1.0",
            "--jobs",
            "2",
            "--quiet",
            "--out",
            path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        assert!(out.contains("Pareto front"), "{out}");
        assert!(
            out.contains("2 job(s) — 2 executed, 0 cached, 0 failed"),
            "{out}"
        );
        let json = std::fs::read_to_string(&path).expect("file exists");
        assert!(json.contains("\"pareto_front\""), "{json}");
        assert!(json.contains("\"safe_frequency_surface\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explore_server_mode_round_trips_through_a_daemon() {
        let dir =
            std::env::temp_dir().join(format!("icnoc_cli_test_server_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let server = Server::bind(
            "127.0.0.1:0",
            &RegistryConfig {
                state_dir: dir.join("state"),
                workers: 2,
                queue_limit: 16,
            },
        )
        .expect("binds");
        let addr = server.addr().to_owned();
        let daemon = std::thread::spawn(move || server.run().expect("runs"));

        const GRID: &str = "ports=16;cycles=200;freq=0.9,1.0";
        let remote_path = dir.join("remote.json");
        let out = run_line(&[
            "explore",
            "--server",
            &addr,
            "--grid",
            GRID,
            "--priority",
            "2",
            "--quiet",
            "--out",
            remote_path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        assert!(out.contains("2 job(s) — 2 queued"), "{out}");
        assert!(out.contains("JSON written to"), "{out}");

        // Byte-identical (up to wall_ms lines) to the offline run.
        let offline_path = dir.join("offline.json");
        run_line(&[
            "explore",
            "--grid",
            GRID,
            "--quiet",
            "--out",
            offline_path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        let strip = |p: &std::path::Path| {
            std::fs::read_to_string(p)
                .expect("file exists")
                .lines()
                .filter(|l| !l.contains("wall_ms"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&remote_path), strip(&offline_path));

        client::shutdown(&addr).expect("stops");
        daemon.join().expect("daemon joins");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explore_rejects_bad_grids() {
        let err = run_line(&["explore", "--grid", "teapots=4"]).unwrap_err();
        assert!(err.0.contains("teapots"), "{err}");
    }

    #[test]
    fn bad_builds_are_reported_as_errors() {
        let err = run_line(&["info", "--ports", "48"]).unwrap_err();
        assert!(err.0.contains("power of 2"), "{err}");
        let err = run_line(&["info", "--freq", "5.0"]).unwrap_err();
        assert!(err.0.contains("exceeds"), "{err}");
    }

    #[test]
    fn vcd_file_is_written() {
        let dir = std::env::temp_dir().join("icnoc_cli_test_vcd");
        let path = dir.join("wave.vcd");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_line(&[
            "sim",
            "--ports",
            "16",
            "--pattern",
            "neighbor:0.3",
            "--cycles",
            "100",
            "--vcd",
            path.to_str().expect("utf-8 path"),
        ])
        .expect("runs");
        assert!(out.contains("waveform written"), "{out}");
        let vcd = std::fs::read_to_string(&path).expect("file exists");
        assert!(vcd.contains("$enddefinitions"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
