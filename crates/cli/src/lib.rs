//! Implementation of the `icnoc` command-line tool.
//!
//! Everything lives in the library so the argument parsing and command
//! execution are unit-testable; `main.rs` is a thin shim.
//!
//! ```text
//! icnoc info   [--ports 64] [--kind binary|quad] [--freq 1.0] [--die 10]
//! icnoc verify [build opts] [--variation 0.3] [--sigma 0.05] [--top 10]
//! icnoc sim    [build opts] [--pattern uniform:0.2] [--cycles 2000]
//!              [--seed 42] [--packet-len 1] [--tiles 4:5] [--vcd out.vcd]
//! icnoc yield  [build opts] [--variation 0.2] [--sigma 0.08] [--samples 200]
//! icnoc fig7   [--max-mm 3.0] [--step-mm 0.1]
//! icnoc explore [--grid SPEC] [--jobs N] [--cache-dir DIR] [--resume]
//! ```

#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{parse_pattern, Cli, CliError, Command};
pub use commands::run;
