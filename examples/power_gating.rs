//! Clock power: forwarded clock + fine-grained gating vs a balanced
//! global clock tree.
//!
//! Two effects compound in the IC-NoC's favour (Sections 2 and 5):
//!
//! 1. the forwarded clock needs no skew-balancing buffers, and
//! 2. the 2-phase flow control gates every idle register for free, so the
//!    clock load tracks traffic instead of the clock rate.
//!
//! ```text
//! cargo run --release -p icnoc --example power_gating
//! ```

use icnoc::{demonstrator_patterns, SystemBuilder, SystemError, TilePreset};
use icnoc_clock::{ClockPowerModel, GlobalClockTree};
use icnoc_units::{Millimeters, Picoseconds};

fn main() -> Result<(), SystemError> {
    let system = SystemBuilder::demonstrator().build()?;
    let f = system.frequency();

    // Balanced global tree baseline at increasingly tight skew targets.
    println!("balanced global clock tree on the same die (64 leaves):\n");
    println!(
        "{:>16} {:>14} {:>16} {:>7}",
        "skew target", "balanced (mW)", "forwarded (mW)", "ratio"
    );
    for target in [10.0, 30.0, 100.0] {
        let tree = GlobalClockTree::balanced(64, Millimeters::new(10.0), Picoseconds::new(target))
            .expect("64 is a power of two");
        println!(
            "{:>13} ps {:>14.1} {:>16.1} {:>6.1}x",
            target,
            tree.power(f).value(),
            tree.forwarded_equivalent_power(f).value(),
            tree.power_ratio_vs_forwarded()
        );
    }

    // Gating under increasingly idle traffic.
    println!("\nfine-grained clock gating on the demonstrator:\n");
    let power_model = ClockPowerModel::nominal_90nm();
    let registers = 34 * (system.tree().router_count() * 9 + system.area().stage_count);
    let wire = system.floorplan().total_wire_length();
    println!(
        "{:>10} {:>10} {:>16}",
        "duty (%)", "gated (%)", "register clock mW"
    );
    for duty in [100u32, 50, 25, 10, 5, 1] {
        let patterns = demonstrator_patterns(
            TilePreset::BurstyTiles {
                burst: duty,
                idle: 100 - duty,
            },
            64,
        );
        let mut net = system.network(&patterns, 3);
        let report = net.run_cycles(2_000);
        assert!(report.is_correct());
        let activity = report.gating.activity();
        let reg_power = power_model.register_power(registers, f, activity);
        println!(
            "{:>10} {:>10.1} {:>16.2}",
            duty,
            report.gating.gated_fraction() * 100.0,
            reg_power.value()
        );
    }
    println!(
        "\n(clock wire {:.1} mm fixed at {:.2} mW; register clock power \
         scales with traffic thanks to the inherent gating)",
        wire.value(),
        power_model.wire_power(wire, f).value()
    );
    Ok(())
}
