//! A Figure-4-style waveform of the 2-phase handshake pipeline.
//!
//! Prints the occupancy of each pipeline stage per half-cycle while the
//! consumer stalls and resumes: data streams at full speed, freezes in
//! place the instant congestion appears, and drains without loss the
//! moment it clears — no stall buffers anywhere.
//!
//! ```text
//! cargo run --release -p icnoc --example handshake_trace
//! ```

use icnoc_sim::{Network, SinkMode, TrafficPattern};

fn main() {
    let stages = 8;
    let mut net = Network::pipeline(
        stages,
        TrafficPattern::saturate(),
        SinkMode::StallDuring { from: 12, to: 22 },
        7,
    );

    println!("one column per stage; '#' = stage holds a flit, '.' = empty\n");
    println!("{:>5}  {:^8}  state", "tick", "stages");
    for tick in 0..70u64 {
        let occupancy: String = net
            .stage_occupancy()
            .map(|(_, full)| if full { '#' } else { '.' })
            .collect();
        let cycle = tick / 2;
        let phase = if (12..22).contains(&cycle) {
            "<- sink stalled"
        } else {
            ""
        };
        println!("{tick:>5}  {occupancy}  {phase}");
        net.step();
    }

    net.drain(50);
    let report = net.report();
    println!("\n{report}");
    assert!(report.is_correct(), "the Fig. 4 protocol must be lossless");
    println!(
        "stall froze the pipeline full; resume drained it instantly — \
         exactly the Figure 4 behaviour."
    );
}
