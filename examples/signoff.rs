//! A tape-out-style signoff flow for the demonstrator: static timing,
//! Monte-Carlo yield, and the timing-safe power-surge stagger budget.
//!
//! ```text
//! cargo run --release -p icnoc --example signoff
//! ```

use icnoc::{SystemBuilder, SystemError};
use icnoc_clock::{ClockScheme, LeafStagger, SurgeProfile};
use icnoc_timing::ProcessVariation;
use icnoc_units::{Gigahertz, Picojoules};

fn main() -> Result<(), SystemError> {
    let system = SystemBuilder::demonstrator().build()?;
    println!("{}\n", system.summary());

    // 1. Static timing. The demonstrator meets 1 GHz with zero margin at
    //    nominal silicon, so a +10% corner fails at speed — and the signoff
    //    answer is the derated shipping frequency, not a redesign.
    let nominal = system.verify_nominal();
    assert!(nominal.is_timing_safe());
    println!("nominal silicon: {nominal}\n");

    let variation = ProcessVariation::new(0.1, 0.03);
    let at_speed = system.verify_under(variation, 3.0);
    println!("{}\n", at_speed.sta_report(5));
    let shipping_f = system.max_safe_frequency(variation, 3.0);
    let derated = system.derated(shipping_f);
    let verification = derated.verify_under(variation, 3.0);
    println!(
        "derated to {shipping_f:.3}: {}\n",
        verification.sta_report(5)
    );

    // 2. Monte-Carlo yield at the signoff corner.
    let yields = system.yield_analysis(variation, 500, 2026);
    println!(
        "yield (500 dies): min fmax {:.3}, median {:.3}, max {:.3}",
        yields.min_fmax(),
        yields.median_fmax(),
        yields.max_fmax()
    );
    for f in [0.8, 0.9, 1.0] {
        println!(
            "  {:>4.1} GHz: {:>5.1}% of dies",
            f,
            yields.yield_at(Gigahertz::new(f)) * 100.0
        );
    }
    println!(
        "  shippable at 99% yield: {:.3}\n",
        yields.frequency_at_yield(0.99)
    );

    // 3. Power-surge stagger: how much weighted skew can this netlist
    //    absorb at 1 GHz, and what does it buy?
    let window = system.max_stagger_window();
    let clocks = ClockScheme::forwarded(
        system.tree(),
        system.floorplan(),
        system.pipeline_model().wire(),
        system.frequency(),
    );
    let profile = |stagger: &LeafStagger| {
        SurgeProfile::from_edge_times(
            &stagger.leaf_edge_times(system.tree(), &clocks),
            Picojoules::new(2.0),
            system.frequency().period(),
            20,
        )
    };
    let aligned = profile(&LeafStagger::none(64));
    let staggered = profile(&LeafStagger::uniform(64, window));
    assert!(system.stagger_is_timing_safe(&LeafStagger::uniform(64, window)));
    println!(
        "max timing-safe stagger window at {}: {:.0}",
        system.frequency(),
        window
    );
    println!(
        "peak supply current: {:.2} A aligned -> {:.2} A staggered ({:.0}% reduction)",
        aligned.peak_current_amps(),
        staggered.peak_current_amps(),
        (1.0 - staggered.peak_ratio_vs(&aligned)) * 100.0
    );

    assert!(verification.is_timing_safe());
    println!("\nsignoff complete: timing safe, yield characterised, surge budget set.");
    Ok(())
}
