//! Quickstart: build the paper's demonstrator, prove it timing-safe, and
//! push traffic through it.
//!
//! ```text
//! cargo run --release -p icnoc --example quickstart
//! ```

use icnoc::{SystemBuilder, SystemError};
use icnoc_sim::TrafficPattern;

fn main() -> Result<(), SystemError> {
    // The Section 6 demonstrator: 64-port binary tree of 3×3 routers on a
    // 10 mm × 10 mm die, 32-bit data path, 1 GHz forwarded clock.
    let system = SystemBuilder::demonstrator().build()?;
    println!("{}\n", system.summary());

    // Timing signoff: every link segment, both transfer directions.
    let verification = system.verify_nominal();
    println!("{verification}\n");
    assert!(verification.is_timing_safe());

    // Simulate uniform random traffic at 20% injection for 2000 cycles.
    let report = system.simulate(TrafficPattern::uniform(0.2), 2_000, 42);
    println!("uniform 20% traffic: {report}");
    assert!(report.is_correct(), "flow control must be lossless");

    println!(
        "\n{} flits delivered, zero lost/duplicated/reordered — \
         the 2-phase handshake is timing-safe and correct.",
        report.delivered
    );
    Ok(())
}
