//! The full Section 6 demonstrator under its tile workloads.
//!
//! 32 processing tiles (microprocessor + local memory each) hang off a
//! 64-port binary tree. Processors live on even ports, memories on odd
//! ports, and each leaf router gives the processor priority to its own
//! memory — exactly the paper's prioritisation rule.
//!
//! ```text
//! cargo run --release -p icnoc --example demonstrator
//! ```

use icnoc::{demonstrator_patterns, SystemBuilder, SystemError, TilePreset};

fn main() -> Result<(), SystemError> {
    let system = SystemBuilder::demonstrator().build()?;
    println!("{}\n", system.summary());

    let verification = system.verify_nominal();
    println!("signoff: {verification}\n");

    let presets: [(&str, TilePreset); 4] = [
        (
            "local compute  (each uP -> its memory, 40%)",
            TilePreset::LocalCompute { rate: 0.4 },
        ),
        (
            "uniform sharing (uPs -> random ports, 20%)",
            TilePreset::UniformSharing { rate: 0.2 },
        ),
        (
            "hotspot        (50% of traffic -> tile 0's memory)",
            TilePreset::SharedMemoryHotspot {
                rate: 0.3,
                fraction: 0.5,
            },
        ),
        (
            "bursty tiles   (10 busy / 90 idle cycles)",
            TilePreset::BurstyTiles {
                burst: 10,
                idle: 90,
            },
        ),
    ];

    println!(
        "{:<52} {:>9} {:>8} {:>8} {:>8}",
        "workload", "delivered", "avg lat", "max lat", "gated%"
    );
    for (name, preset) in presets {
        let patterns = demonstrator_patterns(preset, 64);
        let mut net = system.network(&patterns, 1);
        net.run_cycles(2_000);
        net.drain(4_000);
        let r = net.report();
        assert!(r.is_correct(), "{name}: {r}");
        println!(
            "{:<52} {:>9} {:>8.1} {:>8.1} {:>8.1}",
            name,
            r.delivered,
            r.latency.mean_cycles(),
            r.latency.max_cycles(),
            r.gating.gated_fraction() * 100.0
        );
    }

    println!(
        "\nLocal traffic crosses one 3x3 router (1.5 cycles + handoff); \
         bursty tiles clock-gate almost the whole network while idle."
    );
    Ok(())
}
