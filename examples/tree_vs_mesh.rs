//! The Section 3 topology argument: binary tree vs 2-D mesh.
//!
//! Analytic comparison (hops, routers, area, per-flit energy) plus a
//! head-to-head simulation on identical router depth, under both the
//! mesh-friendly uniform workload and the locality-mapped workload the
//! paper argues applications should use.
//!
//! ```text
//! cargo run --release -p icnoc --example tree_vs_mesh
//! ```

use icnoc::{SystemBuilder, SystemError};
use icnoc_baseline::SynchronousMesh;
use icnoc_sim::TrafficPattern;
use icnoc_topology::{analysis, TreeKind};
use icnoc_units::Millimeters;

fn main() -> Result<(), SystemError> {
    println!("analytic comparison, 32-bit data path:\n");
    println!(
        "{:>6} {:>11} {:>11} {:>9} {:>9} {:>10} {:>10}",
        "ports", "tree worst", "mesh worst", "tree mm2", "mesh mm2", "tree pJ", "mesh pJ"
    );
    for (ports, die) in [(16usize, 5.0), (64, 10.0), (256, 20.0)] {
        let row = analysis::compare(ports, Millimeters::new(die), 32)
            .expect("powers of two that are perfect squares");
        println!(
            "{:>6} {:>11} {:>11} {:>9.2} {:>9.2} {:>10.1} {:>10.1}",
            ports,
            row.tree_worst_hops,
            row.mesh_worst_hops,
            row.tree_area.value(),
            row.mesh_area.value(),
            row.tree_energy.value(),
            row.mesh_energy.value()
        );
    }

    println!("\nsimulated at 64 ports (rate 5%):\n");
    let tree = SystemBuilder::new(TreeKind::Binary, 64).build()?;
    let mesh = SynchronousMesh::new(64).expect("64 is a perfect square");
    println!(
        "{:<12} {:<10} {:>9} {:>9} {:>9}",
        "fabric", "workload", "delivered", "avg lat", "max lat"
    );
    let workloads: [(&str, TrafficPattern); 2] = [
        ("uniform", TrafficPattern::uniform(0.05)),
        ("neighbour", TrafficPattern::Neighbor { rate: 0.05 }),
    ];
    for (name, pattern) in workloads {
        let tr = tree.simulate(pattern.clone(), 2_000, 11);
        let mr = mesh.simulate(pattern, 2_000, 11);
        assert!(tr.is_correct() && mr.is_correct());
        for (fabric, r) in [("binary tree", &tr), ("XY mesh", &mr)] {
            println!(
                "{:<12} {:<10} {:>9} {:>9.1} {:>9.1}",
                fabric,
                name,
                r.delivered,
                r.latency.mean_cycles(),
                r.latency.max_cycles()
            );
        }
    }

    println!(
        "\nWith locality (the mapping the paper assumes) the tree crosses a \
         single 3x3 router per transfer; the mesh's advantage only exists \
         under uniform traffic, and it pays 2x the silicon for it."
    );
    Ok(())
}
