//! Graceful degradation: the "correct by construction" property.
//!
//! Section 4's central claim: both setup and hold windows widen as the
//! clock slows, so *any* amount of process variation can be absorbed by
//! lowering the clock frequency. This example sweeps increasingly bad
//! silicon, finds the safe clock for each, and proves it by verification.
//!
//! ```text
//! cargo run --release -p icnoc --example graceful_degradation
//! ```

use icnoc::{SystemBuilder, SystemError};
use icnoc_timing::ProcessVariation;

fn main() -> Result<(), SystemError> {
    let system = SystemBuilder::demonstrator().build()?;
    println!("demonstrator built for 1 GHz at nominal silicon\n");

    println!(
        "{:>12} {:>10} {:>12} {:>14} {:>16}",
        "systematic", "sigma", "safe clock", "ok at 1 GHz?", "ok when derated?"
    );
    for (systematic, sigma) in [
        (0.00, 0.00),
        (0.10, 0.03),
        (0.30, 0.05),
        (0.50, 0.08),
        (1.00, 0.10),
        (3.00, 0.20),
    ] {
        let variation = ProcessVariation::new(systematic, sigma);
        let safe = system.max_safe_frequency(variation, 3.0);
        let at_speed = system.verify_under(variation, 3.0).is_timing_safe();
        // Same physical chip, clock turned down — no re-synthesis.
        let derated_ok = system
            .derated(safe)
            .verify_under(variation, 3.0)
            .is_timing_safe();
        println!(
            "{:>11.0}% {:>9.0}% {:>9.3} GHz {:>14} {:>16}",
            systematic * 100.0,
            sigma * 100.0,
            safe.value(),
            at_speed,
            derated_ok
        );
        assert!(derated_ok, "a safe frequency must always exist and verify");
    }

    println!(
        "\nEvery corner verifies at its derated clock: timing is guaranteed \
         to hold at some frequency no matter what the process variation is."
    );
    Ok(())
}
