//! Property-based integration tests of the 2-phase flow-control protocol
//! and the timing solvers, across crates.

use icnoc::SystemBuilder;
use icnoc_sim::{Network, SinkMode, TileTraffic, TrafficPattern, TreeNetworkConfig};
use icnoc_timing::ProcessVariation;
use icnoc_topology::{TreeKind, TreeTopology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Fig. 4 protocol never loses, duplicates or reorders flits on a
    /// pipeline of any depth, at any injection rate, under any stall
    /// window.
    #[test]
    fn pipeline_protocol_is_correct_under_arbitrary_stalls(
        stages in 1usize..24,
        rate in 0.05f64..1.0,
        stall_from in 0u64..300,
        stall_len in 0u64..300,
        seed in any::<u64>(),
    ) {
        let mut net = Network::pipeline(
            stages,
            TrafficPattern::uniform(rate),
            SinkMode::StallDuring { from: stall_from, to: stall_from + stall_len },
            seed,
        );
        net.run_cycles(600);
        prop_assert!(net.drain(stages as u64 + 700), "failed to drain");
        let report = net.report();
        prop_assert!(report.is_correct(), "{report}");
        prop_assert_eq!(report.sent, report.delivered);
    }

    /// A throttled consumer bounds throughput but never breaks the
    /// protocol.
    #[test]
    fn throttled_sink_preserves_correctness(
        stages in 1usize..16,
        period in 1u64..12,
        seed in any::<u64>(),
    ) {
        let mut net = Network::pipeline(
            stages,
            TrafficPattern::saturate(),
            SinkMode::Throttle { period },
            seed,
        );
        let report = net.run_cycles(500);
        prop_assert_eq!(report.duplicated, 0);
        prop_assert_eq!(report.reordered, 0);
        // Delivered rate matches the throttle within fill slop.
        let expected = 1.0 / period as f64;
        prop_assert!(
            (report.throughput_per_cycle() - expected).abs() < 0.1,
            "throughput {} vs throttle {}",
            report.throughput_per_cycle(),
            expected
        );
    }

    /// Whole-network correctness on random tree sizes, rates and seeds.
    #[test]
    fn tree_network_delivers_correctly(
        depth in 2u32..6,
        rate in 0.02f64..0.5,
        seed in any::<u64>(),
    ) {
        let ports = 1usize << depth;
        let sys = SystemBuilder::new(TreeKind::Binary, ports)
            .build()
            .expect("powers of two build");
        let report = sys.simulate(TrafficPattern::uniform(rate), 500, seed);
        prop_assert!(report.is_correct(), "{report}");
    }

    /// The graceful-degradation solver always returns a frequency that
    /// verifies, for arbitrary variation magnitudes.
    #[test]
    fn safe_frequency_always_exists_and_verifies(
        systematic in 0.0f64..4.0,
        sigma in 0.0f64..0.3,
    ) {
        let sys = SystemBuilder::new(TreeKind::Binary, 16)
            .build()
            .expect("valid");
        let variation = ProcessVariation::new(systematic, sigma);
        let f = sys.max_safe_frequency(variation, 3.0);
        prop_assert!(f.value() > 0.0);
        prop_assert!(
            sys.derated(f).verify_under(variation, 3.0).is_timing_safe()
        );
    }

    /// Wormhole switching never loses, interleaves or reorders packets,
    /// for any packet length, tree size and load.
    #[test]
    fn wormhole_integrity_over_random_configurations(
        depth in 2u32..5,
        packet_len in 1u32..6,
        rate in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
        let mut net = TreeNetworkConfig::new(tree)
            .with_pattern(TrafficPattern::uniform(rate))
            .with_packet_length(packet_len)
            .with_seed(seed)
            .build();
        net.run_cycles(600);
        prop_assert!(net.drain(3_000), "stall: {:?}", net.diagnose_stall());
        let report = net.report();
        prop_assert!(report.is_correct(), "{report}");
        prop_assert_eq!(report.packets_sent, report.packets_delivered);
        prop_assert_eq!(report.sent, report.packets_sent * u64::from(packet_len));
    }

    /// Ring shortcuts preserve protocol correctness for any load and seed.
    #[test]
    fn ring_shortcuts_preserve_correctness(
        depth in 2u32..5,
        rate in 0.02f64..0.4,
        seed in any::<u64>(),
    ) {
        let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
        let mut net = TreeNetworkConfig::new(tree)
            .with_pattern(TrafficPattern::uniform(rate))
            .with_ring_shortcuts(true)
            .with_seed(seed)
            .build();
        net.run_cycles(600);
        prop_assert!(net.drain(2_000), "stall: {:?}", net.diagnose_stall());
        prop_assert!(net.report().is_correct(), "{}", net.report());
    }

    /// Closed-loop tiles: every request gets exactly one response, for any
    /// outstanding limit and service latency.
    #[test]
    fn closed_loop_conservation(
        depth in 2u32..5,
        rate in 0.05f64..0.8,
        max_outstanding in 1usize..6,
        service in 0u64..10,
        seed in any::<u64>(),
    ) {
        let tree = TreeTopology::binary(1usize << depth).expect("power of 2");
        let mut net = TreeNetworkConfig::new(tree)
            .with_pattern(TrafficPattern::RandomMemory { rate })
            .with_tiles(TileTraffic {
                max_outstanding,
                service_cycles: service,
            })
            .with_seed(seed)
            .build();
        net.run_cycles(600);
        prop_assert!(net.drain(3_000), "stall: {:?}", net.diagnose_stall());
        let report = net.report();
        prop_assert!(report.is_correct(), "{report}");
        // Requests == responses == half of all delivered flits.
        prop_assert_eq!(report.responses * 2, report.delivered);
    }

    /// Gated fraction plus activity is always exactly one observation set.
    #[test]
    fn gating_accounting_is_conserved(
        stages in 1usize..12,
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut net = Network::pipeline(
            stages,
            TrafficPattern::uniform(rate),
            SinkMode::AlwaysAccept,
            seed,
        );
        let cycles = 300u64;
        let report = net.run_cycles(cycles);
        // Every stage sees one edge per cycle.
        prop_assert_eq!(report.gating.total_edges(), cycles * stages as u64);
        let f = report.gating.gated_fraction() + report.gating.activity();
        prop_assert!((f - 1.0).abs() < 1e-12);
    }
}
