//! End-to-end tests for `icnoc explore`: grid-seed determinism across
//! worker counts, cache reuse, and the paper's demonstrator operating
//! point appearing on the Pareto front.

use icnoc_cli::{run, Cli};
use std::path::{Path, PathBuf};

/// A scratch directory unique to this test binary + test name.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icnoc-explore-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// Parses and runs one `icnoc` command line, returning its output text.
fn icnoc(line: &[&str]) -> String {
    run(&Cli::parse(line.iter().copied()).expect("parses")).expect("runs")
}

/// Runs `explore` over `grid` with `jobs` workers, writing JSON to
/// `out`; returns `(rendered text, JSON)`.
fn explore(grid: &str, jobs: &str, cache: Option<&Path>, out: &Path) -> (String, String) {
    let out_str = out.to_str().expect("utf-8 path");
    let mut line = vec![
        "explore", "--grid", grid, "--jobs", jobs, "--quiet", "--out", out_str,
    ];
    let cache_str = cache.map(|c| c.to_str().expect("utf-8 path").to_owned());
    if let Some(c) = &cache_str {
        line.extend_from_slice(&["--cache-dir", c]);
    }
    let text = icnoc(&line);
    let json = std::fs::read_to_string(out).expect("JSON written");
    (text, json)
}

/// Drops the only non-deterministic field (per-job wall-clock time).
fn strip_wall(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("wall_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

const GRID: &str = "ports=16;cycles=300;freq=0.8,1.0;corner=nominal,slow30;soak=0,1";

#[test]
fn jobs_1_and_jobs_8_produce_identical_json() {
    let dir = scratch("determinism");
    let (_, serial) = explore(GRID, "1", None, &dir.join("serial.json"));
    let (_, parallel) = explore(GRID, "8", None, &dir.join("parallel.json"));
    assert_eq!(
        strip_wall(&serial),
        strip_wall(&parallel),
        "worker count must not change any result bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_run_is_answered_from_the_cache() {
    let dir = scratch("cache");
    let cache = dir.join("cache");
    let (text1, json1) = explore(GRID, "4", Some(&cache), &dir.join("first.json"));
    assert!(text1.contains("8 executed, 0 cached"), "{text1}");
    let (text2, json2) = explore(GRID, "4", Some(&cache), &dir.join("second.json"));
    assert!(text2.contains("0 executed, 8 cached"), "{text2}");
    // Replayed outcomes are the stored outcomes, wall clock included.
    assert_eq!(json1, json2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn demonstrator_operating_point_is_on_the_pareto_front() {
    // The paper's demonstrator: binary tree, 64 ports, 10 mm die
    // (~1.25 mm max segment), 1 GHz — swept against slower corners so
    // the front has something to dominate.
    let dir = scratch("demonstrator");
    let (text, json) = explore(
        "kind=binary;ports=64;die=10;width=64;freq=0.6,0.8,1.0;cycles=300",
        "4",
        None,
        &dir.join("demo.json"),
    );
    assert!(text.contains("Pareto front"), "{text}");
    assert!(
        json.contains("\"feasible\": 3"),
        "all three points build: {json}"
    );
    // The 1 GHz point dominates on frequency, so it must be on the front.
    let front = json
        .split("\"safe_frequency_surface\"")
        .next()
        .expect("front precedes surface");
    assert!(
        front.contains("\"freq_ghz\": 1"),
        "1 GHz demonstrator point missing from the front: {front}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_flag_uses_and_reports_the_default_cache_directory() {
    // `--resume` without `--cache-dir` must select the documented
    // default; run it from a scratch cwd-independent config by parsing
    // only (running would litter the repo with a cache directory).
    let cli = Cli::parse(["explore", "--resume"]).expect("parses");
    let icnoc_cli::Command::Explore {
        cache_dir, resume, ..
    } = cli.command
    else {
        panic!("expected explore");
    };
    assert_eq!(cache_dir, None);
    assert!(resume);
}
