//! Integration checks of the experiment harness: every table regenerates
//! and carries its paper-anchored numbers.

use icnoc_bench::{e1, e10, e11, e12, e13, e2, e3, e4, e5, e6, e7, e8, e9};

#[test]
fn e1_contains_eq4_window() {
    let out = e1();
    assert!(out.contains("-540") && out.contains("380"), "{out}");
}

#[test]
fn e2_contains_eq7_budget_and_wire_band() {
    let out = e2();
    let one_ghz_row = out
        .lines()
        .find(|l| l.starts_with("1.0"))
        .expect("1 GHz row present");
    assert!(one_ghz_row.contains("380"), "{one_ghz_row}");
    assert!(one_ghz_row.contains("190"), "{one_ghz_row}");
}

#[test]
fn e3_fig7_anchors_and_monotone_decline() {
    let out = e3();
    assert!(out.contains("1.800"), "{out}");
    // Parse the frequency column and check strict decline.
    let freqs: Vec<f64> = out
        .lines()
        .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
        .filter_map(|l| l.split_whitespace().nth(1)?.parse().ok())
        .collect();
    assert!(freqs.len() >= 10, "{out}");
    for pair in freqs.windows(2) {
        assert!(pair[1] < pair[0], "curve not declining: {out}");
    }
}

#[test]
fn e4_matches_paper_router_numbers() {
    let out = e4();
    for needle in ["0.022", "0.010", "2.5", "1.5"] {
        assert!(out.contains(needle), "missing {needle}: {out}");
    }
}

#[test]
fn e5_area_is_linear_in_ports() {
    let out = e5();
    // The per-port column converges: last two rows agree to 3 decimals.
    let per_port: Vec<f64> = out
        .lines()
        .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
        .filter_map(|l| l.split_whitespace().last()?.parse().ok())
        .collect();
    let last = per_port.last().expect("rows exist");
    let prev = per_port[per_port.len() - 2];
    assert!((last - prev).abs() < 1e-3, "{out}");
}

#[test]
fn e6_tree_wins_hops_area_energy() {
    let out = e6();
    assert!(out.contains("11") && out.contains("15"), "{out}");
}

#[test]
fn e7_tradeoffs_have_both_router_kinds() {
    let out = e7();
    assert!(out.contains("binary"), "{out}");
    assert!(out.contains("quad"), "{out}");
    assert!(out.contains("16.5"), "binary worst-case 11x1.5: {out}");
    assert!(out.contains("12.5"), "quad worst-case 5x2.5: {out}");
}

#[test]
fn e8_stall_window_blocks_then_recovers() {
    let out = e8();
    assert!(out.contains("lost 0"), "{out}");
    let stalled = out
        .lines()
        .find(|l| l.starts_with("stalled"))
        .expect("stalled row");
    assert!(stalled.contains("0.00"), "{stalled}");
    let resumed = out
        .lines()
        .find(|l| l.starts_with("resumed"))
        .expect("resumed row");
    assert!(resumed.contains("1.00"), "{resumed}");
}

#[test]
fn e9_gating_tracks_idleness() {
    let out = e9();
    let one = out.lines().find(|l| l.starts_with("1 ")).expect("1% row");
    assert!(one.contains("99."), "{one}");
}

#[test]
fn e10_all_rows_verify_at_safe_frequency() {
    let out = e10();
    // Only the worst-case table (before the Monte-Carlo section) carries
    // the verified-at-safe-f column.
    let (worst_case, monte_carlo) = out
        .split_once("E10 (Monte-Carlo)")
        .expect("both sections render");
    let data_rows: Vec<&str> = worst_case
        .lines()
        .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
        .collect();
    assert!(data_rows.len() >= 7);
    for row in data_rows {
        assert!(row.trim_end().ends_with("true"), "{row}");
    }
    // Monte-Carlo rows exist and no die ever drops to zero.
    assert!(monte_carlo.contains("yield"), "{monte_carlo}");
    assert!(monte_carlo.contains("never to zero"), "{monte_carlo}");
}

#[test]
fn e11_demonstrator_is_correct_everywhere() {
    let out = e11();
    assert!(out.contains("64 ports"), "{out}");
    assert!(out.contains("timing safe"), "{out}");
    assert!(!out.contains("false"), "{out}");
}

#[test]
fn e12_icnoc_row_is_overhead_free() {
    let out = e12();
    let row = out
        .lines()
        .find(|l| l.starts_with("IC-NoC"))
        .expect("IC-NoC row");
    assert!(row.contains("0.000"), "{row}");
    assert!(row.contains("tree"), "{row}");
}

#[test]
fn e13_all_four_ablations_render() {
    let out = e13();
    for section in ["E13a", "E13b", "E13c", "E13d"] {
        assert!(out.contains(section), "missing {section}");
    }
    // Staggering must reduce the peak.
    assert!(out.contains("0.06x") || out.contains("0.05x"), "{out}");
}
