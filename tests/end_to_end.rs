//! End-to-end integration tests spanning every crate: topology →
//! floorplan → clock distribution → timing verification → simulation.

use icnoc::{demonstrator_patterns, SystemBuilder, SystemError, TilePreset};
use icnoc_clock::ClockDistribution;
use icnoc_sim::TrafficPattern;
use icnoc_timing::ProcessVariation;
use icnoc_topology::{PortId, TreeKind};
use icnoc_units::{Gigahertz, Millimeters};

#[test]
fn demonstrator_full_stack() {
    // Build: the Section 6 configuration.
    let sys = SystemBuilder::demonstrator().build().expect("valid config");
    let summary = sys.summary();
    assert_eq!(summary.ports, 64);
    assert_eq!(summary.routers, 63);

    // Clock distribution: alternation and bounded local skew.
    assert!(sys.clocks().alternation_holds(sys.tree()));
    assert!(sys.clocks().max_link_skew(sys.tree()) < sys.frequency().half_period());

    // Timing signoff: every segment, both directions.
    let verification = sys.verify_nominal();
    assert!(verification.is_timing_safe(), "{verification}");

    // Simulation: correct delivery under all four tile workloads.
    for preset in [
        TilePreset::LocalCompute { rate: 0.4 },
        TilePreset::UniformSharing { rate: 0.2 },
        TilePreset::SharedMemoryHotspot {
            rate: 0.3,
            fraction: 0.5,
        },
        TilePreset::BurstyTiles {
            burst: 10,
            idle: 90,
        },
    ] {
        let patterns = demonstrator_patterns(preset, 64);
        let mut net = sys.network(&patterns, 99);
        net.run_cycles(1_000);
        net.drain(4_000);
        let report = net.report();
        assert!(report.is_correct(), "{preset:?}: {report}");
        assert!(report.delivered > 0, "{preset:?} delivered nothing");
    }
}

#[test]
fn every_buildable_configuration_is_timing_safe_at_its_own_cap() {
    // The builder derives the segment cap from the operating frequency, so
    // every system it produces must pass its own verification.
    for (kind, ports, f) in [
        (TreeKind::Binary, 8, 0.8),
        (TreeKind::Binary, 32, 1.0),
        (TreeKind::Binary, 64, 1.3),
        (TreeKind::Quad, 16, 1.0),
        (TreeKind::Quad, 64, 1.2),
        (TreeKind::Quad, 256, 0.7),
    ] {
        let sys = SystemBuilder::new(kind, ports)
            .frequency(Gigahertz::new(f))
            .build()
            .unwrap_or_else(|e| panic!("{kind:?}/{ports}/{f}: {e}"));
        let v = sys.verify_nominal();
        assert!(v.is_timing_safe(), "{kind:?}/{ports}/{f}: {v}");
    }
}

#[test]
fn degrade_and_recover_cycle() {
    // A chip with bad silicon fails at speed, recovers at the solver's
    // frequency, and still moves traffic correctly there.
    let sys = SystemBuilder::demonstrator().build().expect("valid");
    let variation = ProcessVariation::new(0.6, 0.1);
    assert!(!sys.verify_under(variation, 3.0).is_timing_safe());

    let safe = sys.max_safe_frequency(variation, 3.0);
    let derated = sys.derated(safe);
    assert!(derated.verify_under(variation, 3.0).is_timing_safe());

    let report = derated.simulate(TrafficPattern::uniform(0.2), 1_000, 5);
    assert!(report.is_correct(), "{report}");
    assert!(report.delivered > 1_000);
}

#[test]
fn scaling_the_die_scales_the_timing() {
    // Same port count on a 4x bigger die: links lengthen, the 1 GHz cap
    // demands more pipeline stages, and verification still passes.
    let small = SystemBuilder::new(TreeKind::Binary, 64)
        .die(Millimeters::new(10.0), Millimeters::new(10.0))
        .build()
        .expect("valid");
    let large = SystemBuilder::new(TreeKind::Binary, 64)
        .die(Millimeters::new(20.0), Millimeters::new(20.0))
        .build()
        .expect("valid");
    assert!(large.area().stage_count > small.area().stage_count);
    assert!(large.verify_nominal().is_timing_safe());
    // The scalability claim: growing the die does NOT lower the clock.
    assert_eq!(small.frequency(), large.frequency());
}

#[test]
fn builder_rejects_out_of_reach_clocks_with_precise_errors() {
    let err = SystemBuilder::new(TreeKind::Binary, 64)
        .frequency(Gigahertz::new(2.5))
        .build()
        .unwrap_err();
    assert!(matches!(err, SystemError::RouterTooSlow { .. }), "{err}");

    // The quad tree's 5x5 routers bound at 1.2 GHz.
    let err = SystemBuilder::new(TreeKind::Quad, 64)
        .frequency(Gigahertz::new(1.3))
        .build()
        .unwrap_err();
    assert!(matches!(err, SystemError::RouterTooSlow { .. }), "{err}");
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let sys = SystemBuilder::new(TreeKind::Binary, 16)
            .build()
            .expect("valid");
        sys.simulate(TrafficPattern::uniform(0.3), 800, 1234)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must reproduce identical runs");
}

#[test]
fn single_flow_latency_matches_hop_arithmetic() {
    // One low-rate flow from port 0 to port 63: 11 routers x 1.5 cycles
    // + 1 intermediate link stage each way near the root + sink handoff.
    let sys = SystemBuilder::demonstrator().build().expect("valid");
    let mut patterns = vec![TrafficPattern::Silent; 64];
    patterns[0] = TrafficPattern::Hotspot {
        rate: 0.01,
        target: PortId(63),
        fraction: 1.0,
    };
    let mut net = sys.network(&patterns, 77);
    net.run_cycles(5_000);
    net.drain(500);
    let report = net.report();
    assert!(report.is_correct(), "{report}");
    assert!(report.delivered > 10);
    let mean = report.latency.mean_cycles();
    // 11 hops * 1.5 = 16.5, + 2 root-link pipeline stages (1 cycle) +
    // sink capture (0.5) = 18 cycles at zero load.
    assert!(
        (17.0..20.0).contains(&mean),
        "cross-root zero-load latency {mean} outside expected band"
    );
}
