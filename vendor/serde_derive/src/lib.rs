//! Offline stub of `serde_derive`: emits marker-trait impls for the
//! vendored `serde` stub. Handles the non-generic structs and enums this
//! workspace derives on, and accepts (and ignores) `#[serde(...)]` helper
//! attributes such as `#[serde(transparent)]`.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the struct/enum a derive was applied to.
///
/// The derive input is the item's token stream; at top level the layout is
/// `(attributes) (visibility) struct|enum NAME (generics) ...`, so the
/// first identifier following the `struct` / `enum` keyword is the name.
fn item_name(input: &TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input.clone() {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input).expect("derive input names a struct or enum");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input).expect("derive input names a struct or enum");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
