//! Offline stub of the `serde` trait surface.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace links a serde *backend* (no `serde_json` etc.) — the derives
//! only declare that a type is serialisable. This stub therefore provides
//! `Serialize` / `Deserialize` as marker traits plus a matching derive, so
//! the annotations keep compiling (and keep documenting intent) without
//! the real dependency. Swapping the vendored path back to upstream serde
//! requires no source changes.

#![warn(missing_docs)]

/// Marker for types that can be serialised (stub of `serde::Serialize`).
pub trait Serialize {}

/// Marker for types that can be deserialised (stub of
/// `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
