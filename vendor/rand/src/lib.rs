//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: [`SeedableRng`],
//! [`Rng::gen_bool`] / [`Rng::gen_range`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, but with the same contract the
//! simulator relies on: high-quality, deterministic per seed, `Clone` +
//! `Debug`. Absolute random sequences therefore differ from upstream
//! `rand`; everything in this repository treats seeds as opaque, so only
//! determinism (same seed ⇒ same run) matters.

#![warn(missing_docs)]

use std::ops::Range;

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation, so nearby seeds yield unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u32..7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn float_range_never_reaches_upper_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(rng.next_f64() < 1.0);
        }
    }
}
