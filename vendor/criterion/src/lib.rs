//! Offline mini benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the small `criterion` surface the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`],
//! `criterion_group!` / `criterion_main!`, and `sample_size`
//! configuration. Timing is a simple mean over wall-clock samples — good
//! enough for the coarse comparisons the benches make (and for the
//! tracing-overhead guardrail), without statistics or plotting.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total_nanos: 0.0,
            total_iters: 0,
        };
        // One untimed warm-up sample, then the timed samples.
        f(&mut bencher);
        bencher.total_nanos = 0.0;
        bencher.total_iters = 0;
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean = if bencher.total_iters == 0 {
            0.0
        } else {
            bencher.total_nanos / bencher.total_iters as f64
        };
        println!("bench: {name:<40} {mean:>12.1} ns/iter");
        self
    }

    /// No-op in the stub; present so `criterion_main!` expansions compile.
    pub fn final_summary(&self) {}
}

/// Times closures on behalf of one benchmark (stub of
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    total_nanos: f64,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine`, accumulating into this benchmark's mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Batch enough iterations to outlast timer granularity.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 100 || iters >= 1 << 20 {
                self.total_nanos += elapsed.as_nanos() as f64;
                self.total_iters += iters;
                return;
            }
            iters *= 4;
        }
    }
}

/// Declares a benchmark group runner (stub of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_sum", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
    }

    criterion_group! {
        name = unit_group;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn group_runs() {
        unit_group();
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher {
            total_nanos: 0.0,
            total_iters: 0,
        };
        b.iter(|| black_box(1u32 + 1));
        assert!(b.total_iters > 0);
        assert!(b.total_nanos > 0.0);
    }
}
