//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the (small) `proptest` surface the workspace uses:
//!
//! * the `proptest! { ... }` macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * half-open range strategies over `f64` and unsigned integers
//!   (`-10f64..10.0`, `1usize..12`, ...);
//! * [`any::<u32>()`] / [`any::<u64>()`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! inputs (print them from the panic message) and fails the test. Inputs
//! are drawn from a generator seeded from the test's name, so runs are
//! deterministic and reproducible.

#![warn(missing_docs)]

use std::ops::Range;

/// Execution configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exploring the space.
        Self { cases: 64 }
    }
}

/// The deterministic generator driving property inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name, so each property explores a
    /// stable, test-specific input stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type (stub of `proptest::Strategy`).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// A strategy producing any value of `T` (stub of `proptest::prelude::any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces the full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Everything a `use proptest::prelude::*;` test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Skips the current case when its inputs don't meet a precondition.
///
/// Property bodies run inside a closure, so an early `return` abandons
/// just this case; the runner moves on to the next sample.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}",)+),
                    case $(, $arg)+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!("proptest {} failed at {}", stringify!($name), inputs);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_runs_bodies(x in 0u64..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
            prop_assert_ne!(y + 1.0, y);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(v in any::<u32>()) {
            let _ = v;
        }
    }
}
